//! Shared helpers for the experiment binaries and benches.
//!
//! Each experiment binary regenerates one row/table of `EXPERIMENTS.md`;
//! run them all with `cargo run -p rtx-bench --bin exp_<name> --release`.

use rtx_net::{run, FifoRoundRobin, HorizontalPartition, Network, RunBudget, RunOutcome};
use rtx_relational::{fact, Instance, Schema};
use rtx_transducer::Transducer;

pub mod exp;
pub mod experiments;
pub mod regression;

/// Longest cell a [`Table`] column grows to before eliding with `…`.
const MAX_COL_WIDTH: usize = 48;

/// A minimal table printer (keeps experiment output uniform).
///
/// Rows are buffered and printed by [`Table::done`], with each column
/// widened to its longest cell (the per-column width passed to
/// [`Table::new`] is only a minimum) — labels like `Network[4 nodes: …]`
/// are never cut off at the declared width. Cells beyond
/// [`MAX_COL_WIDTH`] characters are elided with `…`.
pub struct Table {
    headers: Vec<String>,
    min_widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with headers and minimum column widths.
    pub fn new(columns: &[(&str, usize)]) -> Self {
        Table {
            headers: columns.iter().map(|&(name, _)| name.to_string()).collect(),
            min_widths: columns.iter().map(|&(_, w)| w).collect(),
            rows: Vec::new(),
        }
    }

    /// Buffer one row (missing cells print empty, extras are dropped).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Print the whole table with fitted column widths.
    pub fn done(self) {
        print!("{}", self.render());
    }

    /// Render the table to a string (see [`Table::done`]).
    pub fn render(self) -> String {
        let clip = |s: &str| -> String {
            let n = s.chars().count();
            if n <= MAX_COL_WIDTH {
                s.to_string()
            } else {
                let mut out: String = s.chars().take(MAX_COL_WIDTH - 1).collect();
                out.push('…');
                out
            }
        };
        let headers: Vec<String> = self.headers.iter().map(|h| clip(h)).collect();
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|c| clip(c)).collect())
            .collect();
        let mut widths: Vec<usize> = headers
            .iter()
            .zip(&self.min_widths)
            .map(|(h, &w)| w.max(h.chars().count()))
            .collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate().take(widths.len()) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let total: usize = widths.iter().sum::<usize>() + widths.len();
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<w$} "));
            }
            format!("{}\n", line.trim_end())
        };
        let rule = format!("{}\n", "-".repeat(total));
        let mut out = String::new();
        out.push_str(&rule);
        out.push_str(&fmt_row(&headers));
        out.push_str(&rule);
        for row in &rows {
            out.push_str(&fmt_row(row));
        }
        out.push_str(&rule);
        out
    }
}

/// Build the unary-set input `S = {0, …, n−1}`.
pub fn set_input(n: usize) -> Instance {
    Instance::from_facts(
        Schema::new().with("S", 1),
        (0..n as i64).map(|i| fact!("S", i)).collect::<Vec<_>>(),
    )
    .expect("valid facts")
}

/// Build a chain edge instance `E = {(0,1), …, (n−1,n)}` under the given
/// relation name.
pub fn chain_input(rel: &str, n: usize) -> Instance {
    Instance::from_facts(
        Schema::new().with(rel, 2),
        (0..n as i64)
            .map(|i| {
                rtx_relational::Fact::new(
                    rel,
                    rtx_relational::Tuple::new(vec![
                        rtx_relational::Value::int(i),
                        rtx_relational::Value::int(i + 1),
                    ]),
                )
            })
            .collect::<Vec<_>>(),
    )
    .expect("valid facts")
}

/// Run to quiescence with a generous budget and a FIFO scheduler.
pub fn run_fifo(net: &Network, t: &Transducer, input: &Instance) -> RunOutcome {
    let p = HorizontalPartition::round_robin(net, input);
    run(
        net,
        t,
        &p,
        &mut FifoRoundRobin::new(),
        &RunBudget::steps(5_000_000),
    )
    .expect("run failed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_inputs() {
        assert_eq!(set_input(4).fact_count(), 4);
        assert_eq!(chain_input("E", 3).fact_count(), 3);
    }

    #[test]
    fn table_widens_columns_to_fit_labels() {
        let mut t = Table::new(&[("topology", 10), ("n", 3)]);
        let label = "Network[4 nodes: n0–n1, n1–n2, n2–n3]";
        t.row(&[label.into(), "4".into()]);
        let out = t.render();
        // the full label survives (the seed truncated at the declared width)
        assert!(out.contains(label), "label truncated:\n{out}");
        // header still present and aligned
        assert!(out.contains("topology"));
    }

    #[test]
    fn table_elides_extreme_cells() {
        let mut t = Table::new(&[("c", 3)]);
        let long = "x".repeat(MAX_COL_WIDTH + 20);
        t.row(std::slice::from_ref(&long));
        let out = t.render();
        assert!(!out.contains(&long));
        assert!(out.contains('…'));
        assert!(out.lines().all(|l| l.chars().count() <= MAX_COL_WIDTH + 4));
    }
}

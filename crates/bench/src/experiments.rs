//! EX-2 / EX-3a / EX-3b / EX-4: the paper's worked examples, verified,
//! plus the `exp_trace` timeline-capture experiment.
//!
//! These are the bodies of the `exp_examples` and `exp_trace`
//! binaries, exposed as library functions so the tier-1 test suite can
//! smoke-run them in-process (the other experiment binaries are slower
//! and stay bin-only; see `EXPERIMENTS.md`).

use crate::Table;
use rtx_calm::examples;
use rtx_net::{run, FifoRoundRobin, HorizontalPartition, LifoRoundRobin, Network, RunBudget};
use rtx_relational::{fact, Instance, Schema, Value};

/// Under `RTX_STORAGE_STATS=1`, print per-relation storage counters
/// (promotions, folds, small-regime probes, tail high-water mark)
/// aggregated across every node state of a run's final configuration —
/// the adaptive engine's observability knob, so a representation
/// regression shows up in a run instead of a bisect.
fn maybe_print_storage_stats(label: &str, net: &Network, cfg: &rtx_net::Configuration) {
    if !matches!(std::env::var("RTX_STORAGE_STATS").as_deref(), Ok("1")) {
        return;
    }
    let mut agg: std::collections::BTreeMap<rtx_relational::RelName, rtx_relational::StorageStats> =
        std::collections::BTreeMap::new();
    for node in net.nodes() {
        if let Some(state) = cfg.state(node) {
            for (name, s) in state.storage_stats() {
                agg.entry(name).or_default().absorb(&s);
            }
        }
    }
    println!("  storage stats [{label}] ({} nodes, summed):", net.len());
    if agg.is_empty() {
        println!("    (no populated relations)");
    }
    for (name, s) in agg {
        println!(
            "    {name}: promotions={} folds={} small_probes={} tail_hwm={}",
            s.promotions, s.folds, s.small_probes, s.tail_hwm
        );
    }
}

/// Run the four worked-example experiments, printing their tables.
pub fn run_examples() {
    println!("\n[EX-2] Example 2: first-received-element is INCONSISTENT");
    let t = examples::ex2_first_element().unwrap();
    let input = Instance::from_facts(
        Schema::new().with("S", 1),
        vec![fact!("S", 1), fact!("S", 2)],
    )
    .unwrap();
    let net = Network::line(2).unwrap();
    let p = HorizontalPartition::concentrate(&net, &input, &Value::sym("n0")).unwrap();
    let budget = RunBudget::steps(100_000);
    let fifo = run(&net, &t, &p, &mut FifoRoundRobin::new(), &budget).unwrap();
    let lifo = run(&net, &t, &p, &mut LifoRoundRobin::new(), &budget).unwrap();
    let mut tab = Table::new(&[("schedule", 10), ("output", 24), ("quiescent", 10)]);
    tab.row(&[
        "fifo".into(),
        format!("{}", fifo.output),
        fifo.quiescent.to_string(),
    ]);
    tab.row(&[
        "lifo".into(),
        format!("{}", lifo.output),
        lifo.quiescent.to_string(),
    ]);
    tab.done();
    println!(
        "paper: \"different runs may deliver the elements in different orders\" → inconsistent: {}",
        fifo.output != lifo.output
    );
    maybe_print_storage_stats("EX-2 fifo", &net, &fifo.final_config);

    println!("\n[EX-3a] Example 3: equality selection σ_{{$1=$2}}(S), messageless");
    let t = examples::ex3_equality_selection().unwrap();
    let input = Instance::from_facts(
        Schema::new().with("S", 2),
        vec![fact!("S", 1, 1), fact!("S", 1, 2), fact!("S", 3, 3)],
    )
    .unwrap();
    let mut tab = Table::new(&[("topology", 10), ("output", 24), ("messages", 10)]);
    for net in [Network::single(), Network::line(3).unwrap()] {
        let out = crate::run_fifo(&net, &t, &input);
        tab.row(&[
            format!("{}-node", net.len()),
            format!("{}", out.output),
            out.messages_enqueued.to_string(),
        ]);
    }
    tab.done();

    println!("\n[EX-3b] Example 3: naive distributed transitive closure (paper's formulation)");
    let t = examples::ex3_transitive_closure(true).unwrap();
    let input = Instance::from_facts(
        Schema::new().with("S", 2),
        vec![fact!("S", 1, 2), fact!("S", 2, 3), fact!("S", 3, 4)],
    )
    .unwrap();
    let mut tab = Table::new(&[
        ("topology", 10),
        ("|output|", 9),
        ("steps", 8),
        ("messages", 10),
    ]);
    let mut last_tc = None;
    for net in [
        Network::line(2).unwrap(),
        Network::ring(4).unwrap(),
        Network::star(5).unwrap(),
    ] {
        let out = crate::run_fifo(&net, &t, &input);
        assert!(out.quiescent);
        tab.row(&[
            format!("{net:?}"),
            out.output.len().to_string(),
            out.steps.to_string(),
            out.messages_enqueued.to_string(),
        ]);
        last_tc = Some((net, out.final_config));
    }
    tab.done();
    println!("closure of a 3-edge chain has 6 tuples on every topology: consistent & NTI");
    if let Some((net, cfg)) = &last_tc {
        maybe_print_storage_stats("EX-3b star-5", net, cfg);
    }

    println!("\n[EX-4] Example 4: echo — consistent per topology, NOT network-independent");
    let t = examples::ex4_echo().unwrap();
    let input = Instance::from_facts(
        Schema::new().with("S", 1),
        vec![fact!("S", 5), fact!("S", 6)],
    )
    .unwrap();
    let mut tab = Table::new(&[("topology", 10), ("computed query", 20)]);
    for net in [
        Network::single(),
        Network::line(2).unwrap(),
        Network::ring(3).unwrap(),
    ] {
        let out = crate::run_fifo(&net, &t, &input);
        let what = if out.output.is_empty() {
            "empty query"
        } else {
            "identity"
        };
        tab.row(&[format!("{}-node", net.len()), what.into()]);
    }
    tab.done();
}

/// Run the `exp_trace` workload — the grid-256 flood dissemination on
/// the sharded executor — at a forced-full trace level and return the
/// run outcome plus its captured [`rtx_obs::RunTrace`]. The trace's
/// span tree covers rounds → phases → per-node steps → deliveries, and
/// its registry delta carries the `net.*` counters published by
/// [`rtx_net::ShardRunOutcome::publish`], so the two sides must
/// reconcile exactly (the `exp_trace` binary and `tests/obs.rs` both
/// assert it).
pub fn trace_grid_flood() -> (rtx_net::ShardRunOutcome, rtx_obs::RunTrace) {
    use rtx_calm::constructions::flood::{flood_transducer, FloodMode};
    use rtx_net::{run_sharded, ShardOptions};

    let _full = rtx_obs::trace::level_guard(rtx_obs::TraceLevel::Full);
    let schema = Schema::new().with("S", 1);
    let input = crate::set_input(8);
    let net = Network::grid(16, 16).unwrap();
    let t = flood_transducer(&schema, FloodMode::Dedup, None).unwrap();
    let p = HorizontalPartition::round_robin(&net, &input);
    // To-quiescence: the flood wave crosses the whole grid well within
    // this budget, so the captured timeline is a complete run.
    let budget = RunBudget::steps(5_000_000);
    rtx_obs::trace::capture_run(|| {
        run_sharded(&net, &t, &p, &ShardOptions::sharded(4), &budget).unwrap()
    })
}

/// Assert that a captured trace's registry delta reconciles exactly
/// with the run outcome it was captured around — the acceptance
/// contract of the observability layer. Returns the reconciled
/// `(field, value)` pairs for display.
pub fn reconcile_trace(
    out: &rtx_net::ShardRunOutcome,
    trace: &rtx_obs::RunTrace,
) -> Vec<(&'static str, u64)> {
    let pairs = vec![
        ("net.runs", 1u64),
        ("net.rounds", out.rounds as u64),
        ("net.steps", out.outcome.steps as u64),
        ("net.heartbeats", out.outcome.heartbeats as u64),
        ("net.deliveries", out.outcome.deliveries as u64),
        (
            "net.messages_enqueued",
            out.outcome.messages_enqueued as u64,
        ),
        (
            "net.quiescent_runs",
            if out.outcome.quiescent { 1 } else { 0 },
        ),
    ];
    for (name, want) in &pairs {
        let got = trace.counters.counter(name);
        assert_eq!(
            got, *want,
            "registry counter {name} = {got} does not reconcile with the run outcome ({want})"
        );
    }
    pairs
}

//! Query combinators: gating and union.
//!
//! The paper's constructions compose queries: Theorem 6(1) outputs
//! `Q(stored input)` *only once the `Ready` flag is set*; the while→FO
//! compiler (Lemma 5(3)) guards every instruction's queries by a program
//! counter and unions the contributions of different instructions into
//! one insertion query per relation. Gating by a nullary condition and
//! finite union both stay within FO / UCQ¬ when the parts do, so these
//! combinators do not enlarge the local language.

use crate::error::EvalError;
use crate::query::{Query, QueryRef};
use rtx_relational::{Instance, RelName, Relation};
use std::collections::BTreeSet;
use std::fmt;

/// `if condition ≠ ∅ then inner else ∅` — gate a query by a boolean
/// (nullary or any-arity) query.
///
/// Gating preserves monotonicity: a nonempty condition stays nonempty
/// when facts are added (if the condition query is itself monotone).
pub struct GatedQuery {
    condition: QueryRef,
    inner: QueryRef,
}

impl GatedQuery {
    /// Gate `inner` on `condition` being nonempty.
    pub fn new(condition: QueryRef, inner: QueryRef) -> Self {
        GatedQuery { condition, inner }
    }
}

impl Query for GatedQuery {
    fn arity(&self) -> usize {
        self.inner.arity()
    }

    fn eval(&self, db: &Instance) -> Result<Relation, EvalError> {
        if self.condition.eval(db)?.as_bool() {
            self.inner.eval(db)
        } else {
            Ok(Relation::empty(self.inner.arity()))
        }
    }

    fn is_monotone_syntactic(&self) -> bool {
        self.condition.is_monotone_syntactic() && self.inner.is_monotone_syntactic()
    }

    fn referenced_relations(&self) -> BTreeSet<RelName> {
        let mut out = self.condition.referenced_relations();
        out.extend(self.inner.referenced_relations());
        out
    }

    fn is_always_empty(&self) -> bool {
        self.condition.is_always_empty() || self.inner.is_always_empty()
    }

    fn describe(&self) -> String {
        format!(
            "if [{}] then {}",
            self.condition.describe(),
            self.inner.describe()
        )
    }
}

impl fmt::Debug for GatedQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// The union of finitely many queries of the same arity.
pub struct UnionQuery {
    arity: usize,
    parts: Vec<QueryRef>,
}

impl UnionQuery {
    /// Build a union; all parts must share the arity.
    pub fn new(arity: usize, parts: Vec<QueryRef>) -> Result<Self, EvalError> {
        for p in &parts {
            if p.arity() != arity {
                return Err(EvalError::Unsafe {
                    reason: format!(
                        "union part `{}` has arity {}, expected {arity}",
                        p.describe(),
                        p.arity()
                    ),
                });
            }
        }
        Ok(UnionQuery { arity, parts })
    }
}

impl Query for UnionQuery {
    fn arity(&self) -> usize {
        self.arity
    }

    fn eval(&self, db: &Instance) -> Result<Relation, EvalError> {
        let mut out = Relation::empty(self.arity);
        for p in &self.parts {
            out = out.union(&p.eval(db)?).map_err(EvalError::Rel)?;
        }
        Ok(out)
    }

    fn is_monotone_syntactic(&self) -> bool {
        self.parts.iter().all(|p| p.is_monotone_syntactic())
    }

    fn referenced_relations(&self) -> BTreeSet<RelName> {
        self.parts
            .iter()
            .flat_map(|p| p.referenced_relations())
            .collect()
    }

    fn is_always_empty(&self) -> bool {
        self.parts.iter().all(|p| p.is_always_empty())
    }

    fn describe(&self) -> String {
        if self.parts.is_empty() {
            return format!("∅/{}", self.arity);
        }
        self.parts
            .iter()
            .map(|p| p.describe())
            .collect::<Vec<_>>()
            .join(" ∪ ")
    }
}

impl fmt::Debug for UnionQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom;
    use crate::cq::CqBuilder;
    use crate::query::{CopyQuery, EmptyQuery};
    use crate::term::Term;
    use rtx_relational::{fact, Schema};
    use std::sync::Arc;

    fn copy(rel: &str) -> QueryRef {
        Arc::new(CopyQuery::new(rel, 1))
    }

    fn db(ready: bool, s: &[i64]) -> Instance {
        let sch = Schema::new().with("Ready", 0).with("S", 1).with("T", 1);
        let mut i = Instance::empty(sch);
        if ready {
            i.insert_fact(rtx_relational::Fact::new(
                "Ready",
                rtx_relational::Tuple::empty(),
            ))
            .unwrap();
        }
        for &v in s {
            i.insert_fact(fact!("S", v)).unwrap();
        }
        i
    }

    #[test]
    fn gate_opens_and_closes() {
        let q = GatedQuery::new(Arc::new(CopyQuery::new("Ready", 0)), copy("S"));
        assert!(q.eval(&db(false, &[1])).unwrap().is_empty());
        assert_eq!(q.eval(&db(true, &[1])).unwrap().len(), 1);
        assert_eq!(q.arity(), 1);
    }

    #[test]
    fn gate_propagates_properties() {
        let q = GatedQuery::new(Arc::new(CopyQuery::new("Ready", 0)), copy("S"));
        assert!(q.is_monotone_syntactic());
        let refs = q.referenced_relations();
        assert!(refs.contains(&"Ready".into()));
        assert!(refs.contains(&"S".into()));
        let dead = GatedQuery::new(Arc::new(EmptyQuery::new(0)), copy("S"));
        assert!(dead.is_always_empty());
    }

    #[test]
    fn union_merges_parts() {
        let q = UnionQuery::new(1, vec![copy("S"), copy("T")]).unwrap();
        let mut d = db(false, &[1, 2]);
        d.insert_fact(fact!("T", 3)).unwrap();
        assert_eq!(q.eval(&d).unwrap().len(), 3);
        assert!(q.is_monotone_syntactic());
    }

    #[test]
    fn union_arity_checked() {
        let nullary: QueryRef = Arc::new(EmptyQuery::new(0));
        assert!(UnionQuery::new(1, vec![copy("S"), nullary]).is_err());
    }

    #[test]
    fn empty_union_is_empty() {
        let q = UnionQuery::new(2, vec![]).unwrap();
        assert!(q.is_always_empty());
        assert!(q.eval(&db(false, &[])).unwrap().is_empty());
    }

    #[test]
    fn nested_combinators() {
        // if Ready then (S ∪ T)
        let u: QueryRef = Arc::new(UnionQuery::new(1, vec![copy("S"), copy("T")]).unwrap());
        let g = GatedQuery::new(Arc::new(CopyQuery::new("Ready", 0)), u);
        let mut d = db(true, &[1]);
        d.insert_fact(fact!("T", 9)).unwrap();
        assert_eq!(g.eval(&d).unwrap().len(), 2);
        assert!(g.describe().contains("if ["));
    }

    #[test]
    fn gate_with_cq_sentence_condition() {
        // condition: ∃x S(x) as a nullary CQ
        let cond = CqBuilder::head(vec![])
            .when(atom!("S"; @"X"))
            .build()
            .unwrap();
        let q = GatedQuery::new(Arc::new(crate::cq::UcqQuery::single(cond)), copy("T"));
        let mut d = db(false, &[1]);
        d.insert_fact(fact!("T", 5)).unwrap();
        assert_eq!(q.eval(&d).unwrap().len(), 1);
        let d2 = db(false, &[]);
        assert!(q.eval(&d2).unwrap().is_empty());
        let _ = Term::var("X"); // keep import used in this test module
    }
}

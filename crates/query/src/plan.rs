//! Join planning: literal ordering and the scan/indexed join ablation.
//!
//! Every rule-based engine in this crate evaluates a conjunction of
//! atoms left to right, threading a growing set of [`Bindings`]. Two
//! choices dominate the cost of that loop:
//!
//! * **order** — later atoms should have as many columns as possible
//!   already bound, so the join degenerates into an index probe;
//! * **access path** — a bound-column probe against a cached secondary
//!   [`rtx_relational::Index`] instead of a full scan.
//!
//! [`JoinMode::Indexed`] (the default) applies both; [`JoinMode::Scan`]
//! preserves the original literal order and full-scan joins, kept as the
//! measurable baseline for `bench_query`/`bench_dedalus` and as the
//! oracle for the indexed ≡ scan property tests.

use crate::error::EvalError;
use crate::term::{Atom, Term, Var};
use rtx_relational::{Instance, Relation};
use std::collections::BTreeSet;

/// How positive atoms are joined against their relations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum JoinMode {
    /// Original literal order, full-relation scans (the seed behavior).
    Scan,
    /// Planned literal order, bound-column index probes.
    #[default]
    Indexed,
}

/// Order positive atoms greedily by bound-variable coverage.
///
/// Returns a permutation of `0..atoms.len()`. Starting from `pinned`
/// (when given — semi-naive evaluation pins the delta atom first, since
/// the delta is the smallest relation in the join), repeatedly picks the
/// atom with the most bound terms (constants count as bound), breaking
/// ties toward fewer unbound variables and then original position, so
/// the plan is deterministic.
pub fn plan_order(atoms: &[&Atom], pinned: Option<usize>) -> Vec<usize> {
    let n = atoms.len();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut bound: BTreeSet<Var> = BTreeSet::new();
    let bind = |a: &Atom, bound: &mut BTreeSet<Var>| {
        for v in a.vars() {
            bound.insert(v);
        }
    };
    if let Some(i) = pinned {
        order.push(i);
        used[i] = true;
        bind(atoms[i], &mut bound);
    }
    while order.len() < n {
        let mut best: Option<(usize, usize, usize)> = None; // (bound, unbound, idx)
        for (i, a) in atoms.iter().enumerate() {
            if used[i] {
                continue;
            }
            let mut bound_terms = 0usize;
            let mut unbound_vars = BTreeSet::new();
            for t in &a.terms {
                match t {
                    Term::Const(_) => bound_terms += 1,
                    Term::Var(v) => {
                        if bound.contains(v) {
                            bound_terms += 1;
                        } else {
                            unbound_vars.insert(*v);
                        }
                    }
                }
            }
            let candidate = (bound_terms, unbound_vars.len(), i);
            let better = match best {
                None => true,
                Some((bb, bu, _)) => {
                    bound_terms > bb || (bound_terms == bb && unbound_vars.len() < bu)
                }
            };
            if better {
                best = Some(candidate);
            }
        }
        let (_, _, i) = best.expect("unused atom remains");
        order.push(i);
        used[i] = true;
        bind(atoms[i], &mut bound);
    }
    order
}

/// Borrow an atom's relation from an instance without cloning, so the
/// relation's cached indexes survive across rule firings.
///
/// `Ok(None)` means the relation is declared but empty (the join yields
/// no bindings); errors match [`Instance::relation`]'s validation plus
/// the arity check every engine performed after lookup.
pub fn lookup<'a>(db: &'a Instance, atom: &Atom) -> Result<Option<&'a Relation>, EvalError> {
    match db.relation_ref(&atom.pred) {
        Some(rel) => {
            if rel.arity() != atom.arity() {
                return Err(EvalError::Rel(rtx_relational::RelError::ArityMismatch {
                    rel: atom.pred.clone(),
                    expected: rel.arity(),
                    found: atom.arity(),
                }));
            }
            Ok(Some(rel))
        }
        None => match db.schema().arity(&atom.pred) {
            None => Err(EvalError::Rel(rtx_relational::RelError::UnknownRelation {
                rel: atom.pred.clone(),
            })),
            Some(a) if a != atom.arity() => {
                Err(EvalError::Rel(rtx_relational::RelError::ArityMismatch {
                    rel: atom.pred.clone(),
                    expected: a,
                    found: atom.arity(),
                }))
            }
            Some(_) => Ok(None),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom;
    use rtx_relational::{fact, Schema};

    #[test]
    fn plan_prefers_constants_then_connectivity() {
        // R(X,Y), S(Y,Z), T(5,W): T has a constant, goes first; then no
        // atom is connected to T, so the tie-break picks R (fewest
        // unbound vars wins over position only on equal counts).
        let a = atom!("R"; @"X", @"Y");
        let b = atom!("S"; @"Y", @"Z");
        let c = atom!("T"; 5, @"W");
        let order = plan_order(&[&a, &b, &c], None);
        assert_eq!(order[0], 2);
        // after T: R and S both have 0 bound / 2 unbound → position order
        assert_eq!(order, vec![2, 0, 1]);
    }

    #[test]
    fn plan_follows_bound_variables() {
        // E(X,Y), E(Y,Z), S(X): after pinning atom 0, S(X) is fully
        // bound and jumps ahead of E(Y,Z).
        let a = atom!("E"; @"X", @"Y");
        let b = atom!("E"; @"Y", @"Z");
        let c = atom!("S"; @"X");
        let order = plan_order(&[&a, &b, &c], Some(0));
        assert_eq!(order, vec![0, 2, 1]);
    }

    #[test]
    fn plan_is_a_permutation() {
        let a = atom!("A"; @"X");
        let b = atom!("B"; @"X", @"Y");
        let c = atom!("C");
        for pinned in [None, Some(0), Some(1), Some(2)] {
            let mut order = plan_order(&[&a, &b, &c], pinned);
            if let Some(p) = pinned {
                assert_eq!(order[0], p);
            }
            order.sort_unstable();
            assert_eq!(order, vec![0, 1, 2]);
        }
    }

    #[test]
    fn lookup_borrows_and_validates() {
        let sch = Schema::new().with("R", 2).with("S", 1);
        let mut db = Instance::empty(sch);
        db.insert_fact(fact!("R", 1, 2)).unwrap();
        assert!(lookup(&db, &atom!("R"; @"X", @"Y")).unwrap().is_some());
        assert!(lookup(&db, &atom!("S"; @"X")).unwrap().is_none()); // declared, empty
        assert!(lookup(&db, &atom!("Nope"; @"X")).is_err());
        assert!(lookup(&db, &atom!("R"; @"X")).is_err()); // arity mismatch
        assert!(lookup(&db, &atom!("S"; @"X", @"Y")).is_err()); // empty, wrong arity
    }
}

//! View composition: evaluate an inner query over relations defined by
//! view queries.
//!
//! The paper's Theorem 6 constructions repeatedly need this: a node
//! accumulates origin-tagged facts in memory relations (say
//! `Store_R(src, x̄)`), and the query `Q` to be distributed expects the
//! plain input schema (`R(x̄)`). A [`ViewQuery`] first materializes each
//! view (here: project away the tag), then runs `Q` on the result.

use crate::error::EvalError;
use crate::query::{Query, QueryRef};
use rtx_relational::{Instance, RelName, Schema};
use std::collections::BTreeSet;
use std::fmt;

/// A query evaluated over materialized views of the database.
pub struct ViewQuery {
    views: Vec<(RelName, QueryRef)>,
    inner: QueryRef,
    /// Also expose the base relations to the inner query (view names
    /// shadow base names).
    include_base: bool,
}

impl ViewQuery {
    /// Build a view composition. Each `(name, q)` pair defines view
    /// `name` as the result of `q` on the base database.
    pub fn new(views: Vec<(RelName, QueryRef)>, inner: QueryRef) -> Self {
        ViewQuery {
            views,
            inner,
            include_base: false,
        }
    }

    /// Expose base relations alongside the views (views shadow).
    pub fn with_base(mut self) -> Self {
        self.include_base = true;
        self
    }

    fn materialize(&self, db: &Instance) -> Result<Instance, EvalError> {
        let mut schema = Schema::new();
        for (name, q) in &self.views {
            schema.declare(name.clone(), q.arity())?;
        }
        if self.include_base {
            for (name, arity) in db.schema().iter() {
                if !schema.contains(name) {
                    schema.declare(name.clone(), arity)?;
                }
            }
        }
        let mut out = Instance::empty(schema);
        for (name, q) in &self.views {
            let rel = q.eval(db)?;
            out.set_relation(name.clone(), rel)?;
        }
        if self.include_base {
            let view_names: BTreeSet<&RelName> = self.views.iter().map(|(n, _)| n).collect();
            for f in db.facts() {
                if !view_names.contains(f.rel()) {
                    out.insert_fact(f)?;
                }
            }
        }
        Ok(out)
    }
}

impl Query for ViewQuery {
    fn arity(&self) -> usize {
        self.inner.arity()
    }

    fn eval(&self, db: &Instance) -> Result<rtx_relational::Relation, EvalError> {
        let staged = self.materialize(db)?;
        self.inner.eval(&staged)
    }

    fn is_monotone_syntactic(&self) -> bool {
        // Monotone ∘ monotone is monotone. (With include_base, base
        // relations pass through the identity, which is monotone too.)
        self.inner.is_monotone_syntactic()
            && self.views.iter().all(|(_, q)| q.is_monotone_syntactic())
    }

    fn referenced_relations(&self) -> BTreeSet<RelName> {
        // Relations of the *base* database that may be read: everything
        // the views read, plus (with include_base) whatever the inner
        // query reads that is not shadowed by a view.
        let mut out: BTreeSet<RelName> = self
            .views
            .iter()
            .flat_map(|(_, q)| q.referenced_relations())
            .collect();
        if self.include_base {
            let view_names: BTreeSet<&RelName> = self.views.iter().map(|(n, _)| n).collect();
            for r in self.inner.referenced_relations() {
                if !view_names.contains(&r) {
                    out.insert(r);
                }
            }
        }
        out
    }

    fn is_always_empty(&self) -> bool {
        self.inner.is_always_empty()
    }

    fn describe(&self) -> String {
        let views: Vec<String> = self
            .views
            .iter()
            .map(|(n, q)| format!("{n} := {}", q.describe()))
            .collect();
        format!("[{}] ⊢ {}", views.join("; "), self.inner.describe())
    }
}

impl fmt::Debug for ViewQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom;
    use crate::cq::CqBuilder;
    use crate::datalog::{DatalogQuery, Program, Rule};
    use crate::term::Term;
    use rtx_relational::{fact, tuple, Instance};
    use std::sync::Arc;

    /// Store(src, x, y) tagged edges → E(x,y) view, then TC over the view.
    #[test]
    fn project_tag_then_transitive_closure() {
        let sch = Schema::new().with("Store", 3);
        let db = Instance::from_facts(
            sch,
            vec![fact!("Store", "n1", 1, 2), fact!("Store", "n2", 2, 3)],
        )
        .unwrap();
        let view = CqBuilder::head(vec![Term::var("X"), Term::var("Y")])
            .when(atom!("Store"; @"S", @"X", @"Y"))
            .build()
            .unwrap();
        let tc = Program::new(vec![
            Rule::new(
                atom!("T"; @"X", @"Y"),
                vec![crate::datalog::Literal::Pos(atom!("E"; @"X", @"Y"))],
            )
            .unwrap(),
            Rule::new(
                atom!("T"; @"X", @"Z"),
                vec![
                    crate::datalog::Literal::Pos(atom!("T"; @"X", @"Y")),
                    crate::datalog::Literal::Pos(atom!("E"; @"Y", @"Z")),
                ],
            )
            .unwrap(),
        ])
        .unwrap();
        let inner: QueryRef = Arc::new(DatalogQuery::new(tc, "T").unwrap());
        let q = ViewQuery::new(
            vec![(
                "E".into(),
                Arc::new(crate::cq::UcqQuery::single(view)) as QueryRef,
            )],
            inner,
        );
        let out = q.eval(&db).unwrap();
        assert!(out.contains(&tuple![1, 3]));
        assert_eq!(out.len(), 3);
        assert!(q.is_monotone_syntactic());
        assert!(q.referenced_relations().contains(&"Store".into()));
        assert!(!q.referenced_relations().contains(&"E".into()));
    }

    #[test]
    fn include_base_passes_other_relations() {
        let sch = Schema::new().with("Store", 2).with("K", 1);
        let db = Instance::from_facts(sch, vec![fact!("Store", 1, 5), fact!("K", 5)]).unwrap();
        let view = CqBuilder::head(vec![Term::var("X")])
            .when(atom!("Store"; @"T", @"X"))
            .build()
            .unwrap();
        // inner: S(x) ∧ K(x)
        let inner_rule = CqBuilder::head(vec![Term::var("X")])
            .when(atom!("S"; @"X"))
            .when(atom!("K"; @"X"))
            .build()
            .unwrap();
        let q = ViewQuery::new(
            vec![(
                "S".into(),
                Arc::new(crate::cq::UcqQuery::single(view)) as QueryRef,
            )],
            Arc::new(crate::cq::UcqQuery::single(inner_rule)),
        )
        .with_base();
        let out = q.eval(&db).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![5]));
        let refs = q.referenced_relations();
        assert!(refs.contains(&"Store".into()));
        assert!(refs.contains(&"K".into()));
    }

    #[test]
    fn view_shadowing_hides_base_relation() {
        // Base has S = {1}; view redefines S = {} (empty query).
        let sch = Schema::new().with("S", 1);
        let db = Instance::from_facts(sch, vec![fact!("S", 1)]).unwrap();
        let q = ViewQuery::new(
            vec![(
                "S".into(),
                Arc::new(crate::query::EmptyQuery::new(1)) as QueryRef,
            )],
            Arc::new(crate::query::CopyQuery::new("S", 1)),
        )
        .with_base();
        assert!(q.eval(&db).unwrap().is_empty());
    }

    #[test]
    fn monotonicity_composition() {
        let q = ViewQuery::new(
            vec![(
                "S".into(),
                Arc::new(crate::query::CopyQuery::new("R", 1)) as QueryRef,
            )],
            Arc::new(crate::query::CopyQuery::new("S", 1)),
        );
        assert!(q.is_monotone_syntactic());
    }
}

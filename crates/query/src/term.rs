//! Variables, terms, atoms and bindings — shared by every rule-based
//! language in this crate (CQ, UCQ¬, Datalog) and by the FO engine.

use rtx_relational::{RelName, Relation, Symbol, Tuple, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A variable name (process-interned, `Copy`).
///
/// Ordering is by the variable's *name* (via [`Symbol`]'s structural
/// order), so everything keyed by `Var` iterates deterministically,
/// independent of intern history.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(Symbol);

impl Var {
    /// Intern a variable name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Var(Symbol::new(name))
    }

    /// The textual name.
    pub fn as_str(&self) -> &str {
        self.0.as_str()
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

/// A term: a variable or a constant.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Shorthand for a variable term.
    pub fn var(name: impl AsRef<str>) -> Self {
        Term::Var(Var::new(name))
    }

    /// Shorthand for a constant term.
    pub fn cons(v: impl Into<Value>) -> Self {
        Term::Const(v.into())
    }

    /// The variable inside, if any.
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// Resolve under a binding; `None` when an unbound variable.
    pub fn resolve(&self, env: &Bindings) -> Option<Value> {
        match self {
            Term::Var(v) => env.get(v).cloned(),
            Term::Const(c) => Some(*c),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A (partial) assignment of values to variables.
///
/// Stored as a flat vector sorted by variable — bindings are tiny (a
/// rule's variable count), so binary search beats a tree and, since
/// both `Var` and `Value` are `Copy`, cloning a binding set is a plain
/// memcpy. That clone sits on the innermost loop of every join, which
/// is why this is not a `BTreeMap`. The sorted invariant also makes
/// equality insertion-order-insensitive, which the scan/indexed join
/// equivalence guarantees rely on.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bindings(Vec<(Var, Value)>);

impl Bindings {
    /// The empty binding set.
    pub fn new() -> Self {
        Bindings(Vec::new())
    }

    #[inline]
    fn pos(&self, v: &Var) -> Result<usize, usize> {
        self.0.binary_search_by(|(w, _)| w.cmp(v))
    }

    /// The value bound to `v`, if any.
    #[inline]
    pub fn get(&self, v: &Var) -> Option<&Value> {
        match self.pos(v) {
            Ok(i) => Some(&self.0[i].1),
            Err(_) => None,
        }
    }

    /// Bind `v` to `val`, returning the previous value if `v` was bound.
    pub fn insert(&mut self, v: Var, val: Value) -> Option<Value> {
        match self.pos(&v) {
            Ok(i) => Some(std::mem::replace(&mut self.0[i].1, val)),
            Err(i) => {
                self.0.insert(i, (v, val));
                None
            }
        }
    }

    /// Unbind `v`, returning its value if it was bound.
    pub fn remove(&mut self, v: &Var) -> Option<Value> {
        match self.pos(v) {
            Ok(i) => Some(self.0.remove(i).1),
            Err(_) => None,
        }
    }

    /// Is `v` bound?
    pub fn contains_key(&self, v: &Var) -> bool {
        self.pos(v).is_ok()
    }

    /// The bound variables, in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = &Var> {
        self.0.iter().map(|(v, _)| v)
    }

    /// Iterate over `(variable, value)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Value)> {
        self.0.iter().map(|(v, a)| (v, a))
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Any bindings at all?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl std::ops::Index<&Var> for Bindings {
    type Output = Value;
    fn index(&self, v: &Var) -> &Value {
        self.get(v).expect("variable not bound")
    }
}

impl fmt::Debug for Bindings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut m = f.debug_map();
        for (v, a) in self.iter() {
            m.entry(v, a);
        }
        m.finish()
    }
}

impl FromIterator<(Var, Value)> for Bindings {
    fn from_iter<T: IntoIterator<Item = (Var, Value)>>(iter: T) -> Self {
        let mut b = Bindings::new();
        for (v, a) in iter {
            b.insert(v, a);
        }
        b
    }
}

/// A predicate atom `R(t1, …, tk)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom {
    /// The predicate / relation name.
    pub pred: RelName,
    /// The argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Build an atom.
    pub fn new(pred: impl Into<RelName>, terms: Vec<Term>) -> Self {
        Atom {
            pred: pred.into(),
            terms,
        }
    }

    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// The variables occurring in the atom, in first-occurrence order.
    pub fn vars(&self) -> Vec<Var> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if seen.insert(*v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// Match the atom against a concrete tuple, extending `env`.
    ///
    /// Returns the extended bindings when the tuple is compatible with the
    /// atom's constants, repeated variables, and the existing bindings.
    pub fn match_tuple(&self, tuple: &Tuple, env: &Bindings) -> Option<Bindings> {
        if tuple.arity() != self.terms.len() {
            return None;
        }
        // Phase 1: verify constants and already-bound variables without
        // touching `env` — the overwhelmingly common outcome of a scan
        // join is rejection, which must not pay for a clone.
        let mut fresh = false;
        for (term, value) in self.terms.iter().zip(tuple.iter()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        return None;
                    }
                }
                Term::Var(v) => match env.get(v) {
                    Some(bound) => {
                        if bound != value {
                            return None;
                        }
                    }
                    None => fresh = true,
                },
            }
        }
        // Phase 2: clone (a memcpy) and bind the fresh variables; a
        // repeated fresh variable is checked against its first binding.
        let mut out = env.clone();
        if fresh {
            for (term, value) in self.terms.iter().zip(tuple.iter()) {
                if let Term::Var(v) = term {
                    match out.get(v) {
                        Some(bound) => {
                            if bound != value {
                                return None;
                            }
                        }
                        None => {
                            out.insert(*v, *value);
                        }
                    }
                }
            }
        }
        Some(out)
    }

    /// Instantiate the atom under complete bindings into a tuple.
    ///
    /// Returns `None` if some variable is unbound.
    pub fn instantiate(&self, env: &Bindings) -> Option<Tuple> {
        self.terms
            .iter()
            .map(|t| t.resolve(env))
            .collect::<Option<Vec<_>>>()
            .map(Tuple::new)
    }

    /// Join this atom against a materialized relation: for every tuple of
    /// `rel` compatible with some binding in `envs`, emit the extension.
    pub fn join(&self, rel: &Relation, envs: &[Bindings]) -> Vec<Bindings> {
        let mut out = Vec::new();
        for env in envs {
            // If all terms are already determined, use a membership probe
            // instead of scanning the relation.
            if let Some(t) = self.instantiate(env) {
                if rel.contains(&t) {
                    out.push(env.clone());
                }
                continue;
            }
            for tuple in rel.iter() {
                if let Some(ext) = self.match_tuple(tuple, env) {
                    out.push(ext);
                }
            }
        }
        out
    }

    /// Index-accelerated [`Atom::join`]: probe a cached secondary index
    /// of `rel` on the columns already determined by `envs` (constants
    /// plus variables bound in every binding) instead of scanning.
    ///
    /// Produces exactly the bindings of `join`, in the same order: a
    /// probe enumerates the subsequence of a full scan agreeing on the
    /// key columns, and [`Atom::match_tuple`] re-checks everything else
    /// (repeated variables, per-binding extras).
    pub fn join_indexed(&self, rel: &Relation, envs: &[Bindings]) -> Vec<Bindings> {
        if envs.is_empty() || rel.is_empty() {
            return Vec::new();
        }
        // For tiny relations a scan beats building (or even probing) a
        // hash index; the cutover only changes the access path, never
        // the result.
        const SCAN_THRESHOLD: usize = 16;
        if rel.len() <= SCAN_THRESHOLD {
            return self.join(rel, envs);
        }
        // Columns determined in *every* binding — the batch shares one
        // index. Bindings produced by a common join prefix all bind the
        // same variables, so this is rarely a strict intersection.
        let mut common: BTreeSet<&Var> = envs[0].keys().collect();
        for env in &envs[1..] {
            common.retain(|v| env.contains_key(v));
        }
        let cols: Vec<usize> = self
            .terms
            .iter()
            .enumerate()
            .filter(|(_, t)| match t {
                Term::Const(_) => true,
                Term::Var(v) => common.contains(v),
            })
            .map(|(i, _)| i)
            .collect();
        if cols.is_empty() || cols.len() == self.terms.len() {
            // Nothing to probe on, or fully determined (join() already
            // degenerates to a membership probe per binding).
            return self.join(rel, envs);
        }
        let idx = rel
            .index(&cols)
            .expect("key columns lie within the checked arity");
        let mut out = Vec::new();
        let mut key: Vec<Value> = Vec::with_capacity(cols.len());
        for env in envs {
            key.clear();
            for &c in &cols {
                key.push(
                    self.terms[c]
                        .resolve(env)
                        .expect("key columns are bound in every binding"),
                );
            }
            for tuple in idx.probe(&key) {
                if let Some(ext) = self.match_tuple(tuple, env) {
                    out.push(ext);
                }
            }
        }
        out
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Build an atom tersely: variables are `@"X"`, constants anything
/// convertible to [`Value`].
///
/// ```
/// use rtx_query::atom;
/// let a = atom!("R"; @"X", 3, @"Y");
/// assert_eq!(a.arity(), 3);
/// ```
#[macro_export]
macro_rules! atom {
    ($pred:expr $(; $($args:tt)*)?) => {
        $crate::Atom::new($pred, $crate::atom_args!([] $($($args)*)?))
    };
}

/// Internal helper for [`atom!`]: parses the argument list.
#[doc(hidden)]
#[macro_export]
macro_rules! atom_args {
    ([$($done:expr),*]) => { vec![$($done),*] };
    ([$($done:expr),*] @$v:literal $(, $($rest:tt)*)?) => {
        $crate::atom_args!([$($done,)* $crate::Term::var($v)] $($($rest)*)?)
    };
    ([$($done:expr),*] $c:expr $(, $($rest:tt)*)?) => {
        $crate::atom_args!([$($done,)* $crate::Term::cons($c)] $($($rest)*)?)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_relational::tuple;

    #[test]
    fn atom_macro_mixes_vars_and_consts() {
        let a = atom!("R"; @"X", 3, "sym");
        assert_eq!(a.pred.as_str(), "R");
        assert_eq!(a.terms[0], Term::var("X"));
        assert_eq!(a.terms[1], Term::cons(3));
        assert_eq!(a.terms[2], Term::cons("sym"));
        let nullary = atom!("B");
        assert_eq!(nullary.arity(), 0);
    }

    #[test]
    fn match_tuple_binds_fresh_vars() {
        let a = atom!("R"; @"X", @"Y");
        let env = a.match_tuple(&tuple![1, 2], &Bindings::new()).unwrap();
        assert_eq!(env[&Var::new("X")], Value::int(1));
        assert_eq!(env[&Var::new("Y")], Value::int(2));
    }

    #[test]
    fn match_tuple_respects_repeats_and_consts() {
        let a = atom!("R"; @"X", @"X");
        assert!(a.match_tuple(&tuple![1, 2], &Bindings::new()).is_none());
        assert!(a.match_tuple(&tuple![2, 2], &Bindings::new()).is_some());
        let c = atom!("R"; 5, @"X");
        assert!(c.match_tuple(&tuple![4, 1], &Bindings::new()).is_none());
        assert!(c.match_tuple(&tuple![5, 1], &Bindings::new()).is_some());
    }

    #[test]
    fn match_tuple_respects_prior_bindings() {
        let a = atom!("R"; @"X");
        let mut env = Bindings::new();
        env.insert(Var::new("X"), Value::int(9));
        assert!(a.match_tuple(&tuple![1], &env).is_none());
        assert!(a.match_tuple(&tuple![9], &env).is_some());
    }

    #[test]
    fn instantiate_requires_complete_bindings() {
        let a = atom!("R"; @"X", 7);
        assert_eq!(a.instantiate(&Bindings::new()), None);
        let mut env = Bindings::new();
        env.insert(Var::new("X"), Value::int(1));
        assert_eq!(a.instantiate(&env), Some(tuple![1, 7]));
    }

    #[test]
    fn join_extends_bindings() {
        let rel = Relation::from_tuples(2, vec![tuple![1, 2], tuple![2, 3]]).unwrap();
        let a = atom!("R"; @"X", @"Y");
        let envs = a.join(&rel, &[Bindings::new()]);
        assert_eq!(envs.len(), 2);
        // join with X pre-bound probes
        let mut env = Bindings::new();
        env.insert(Var::new("X"), Value::int(2));
        let b = atom!("R"; @"X", @"Y");
        let envs = b.join(&rel, &[env]);
        assert_eq!(envs.len(), 1);
        assert_eq!(envs[0][&Var::new("Y")], Value::int(3));
    }

    #[test]
    fn join_indexed_agrees_with_scan() {
        let rel = Relation::from_tuples(
            2,
            vec![tuple![1, 2], tuple![2, 3], tuple![2, 4], tuple![3, 4]],
        )
        .unwrap();
        let a = atom!("R"; @"X", @"Y");
        // X bound in every env: probes on column 0
        let envs: Vec<Bindings> = [1i64, 2, 9]
            .iter()
            .map(|&x| {
                let mut e = Bindings::new();
                e.insert(Var::new("X"), Value::int(x));
                e
            })
            .collect();
        assert_eq!(a.join_indexed(&rel, &envs), a.join(&rel, &envs));
        // nothing bound: falls back to scan
        let free = vec![Bindings::new()];
        assert_eq!(a.join_indexed(&rel, &free), a.join(&rel, &free));
        // repeated variable with constant
        let b = atom!("R"; @"X", @"X");
        assert_eq!(b.join_indexed(&rel, &free), b.join(&rel, &free));
    }

    #[test]
    fn join_indexed_mixed_bound_sets_intersect() {
        let rel = Relation::from_tuples(2, vec![tuple![1, 2], tuple![2, 3]]).unwrap();
        let a = atom!("R"; @"X", @"Y");
        let mut e1 = Bindings::new();
        e1.insert(Var::new("X"), Value::int(1));
        let mut e2 = Bindings::new();
        e2.insert(Var::new("X"), Value::int(2));
        e2.insert(Var::new("Y"), Value::int(3));
        let envs = vec![e1, e2];
        assert_eq!(a.join_indexed(&rel, &envs), a.join(&rel, &envs));
    }

    #[test]
    fn vars_in_first_occurrence_order() {
        let a = atom!("R"; @"Y", @"X", @"Y");
        let vs: Vec<_> = a.vars().iter().map(|v| v.as_str().to_string()).collect();
        assert_eq!(vs, vec!["Y", "X"]);
    }

    #[test]
    fn term_resolution() {
        let mut env = Bindings::new();
        env.insert(Var::new("X"), Value::int(4));
        assert_eq!(Term::var("X").resolve(&env), Some(Value::int(4)));
        assert_eq!(Term::var("Z").resolve(&env), None);
        assert_eq!(Term::cons(1).resolve(&env), Some(Value::int(1)));
    }
}

//! Query evaluation errors.

use rtx_relational::{RelError, RelName};
use std::fmt;

/// Errors raised while validating or evaluating queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// Underlying kernel error (unknown relation, arity clash, …).
    Rel(RelError),
    /// A rule or formula is unsafe (e.g. a head or negated variable not
    /// bound by a positive atom).
    Unsafe {
        /// Human-readable reason.
        reason: String,
    },
    /// A Datalog program is not stratifiable (recursion through negation).
    NotStratifiable {
        /// A predicate on a negative cycle.
        pred: RelName,
    },
    /// A while-program exceeded its step budget.
    Diverged {
        /// The budget that was exhausted.
        fuel: usize,
    },
    /// A parse error with position information.
    Parse {
        /// Human-readable message.
        message: String,
        /// Byte offset in the source.
        offset: usize,
    },
    /// Anything else (native queries may fail arbitrarily).
    Other(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Rel(e) => write!(f, "{e}"),
            EvalError::Unsafe { reason } => write!(f, "unsafe query: {reason}"),
            EvalError::NotStratifiable { pred } => {
                write!(
                    f,
                    "program is not stratifiable: `{pred}` depends negatively on itself"
                )
            }
            EvalError::Diverged { fuel } => {
                write!(f, "while-program exceeded its step budget of {fuel}")
            }
            EvalError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            EvalError::Other(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Rel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelError> for EvalError {
    fn from(e: RelError) -> Self {
        EvalError::Rel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(EvalError::Unsafe {
            reason: "x free".into()
        }
        .to_string()
        .contains("unsafe"));
        assert!(EvalError::NotStratifiable { pred: "p".into() }
            .to_string()
            .contains("stratifiable"));
        assert!(EvalError::Diverged { fuel: 10 }.to_string().contains("10"));
        assert!(EvalError::Parse {
            message: "oops".into(),
            offset: 3
        }
        .to_string()
        .contains("byte 3"));
        let rel: EvalError = RelError::NotInjective.into();
        assert!(rel.to_string().contains("injective"));
    }
}

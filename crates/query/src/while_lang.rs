//! The *while* query language: FO extended with relation assignment and
//! while-loops (paper, Section 2). `while` captures exactly the queries
//! computable by FO-transducers on a single-node network (Lemma 5(3))
//! and, distributedly, by FO-transducers on any network (Theorem 6(3)).

use crate::error::EvalError;
use crate::query::{Query, QueryRef};
use rtx_relational::{Instance, RelName, Relation, Schema};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A loop guard.
#[derive(Clone, Debug)]
pub enum Guard {
    /// Loop while the relation is nonempty.
    NonEmpty(RelName),
    /// Loop while the relation is empty.
    Empty(RelName),
}

impl Guard {
    fn holds(&self, db: &Instance) -> Result<bool, EvalError> {
        match self {
            Guard::NonEmpty(r) => Ok(!db.relation(r)?.is_empty()),
            Guard::Empty(r) => Ok(db.relation(r)?.is_empty()),
        }
    }

    fn relation(&self) -> &RelName {
        match self {
            Guard::NonEmpty(r) | Guard::Empty(r) => r,
        }
    }
}

/// A statement of the while language.
#[derive(Clone)]
pub enum Stmt {
    /// `R := Q` — overwrite relation `R` with the result of `Q` evaluated
    /// on the current workspace.
    Assign(RelName, QueryRef),
    /// `R := R ∪ Q` — cumulative assignment (syntactic sugar the
    /// inflationary fragment uses).
    Accumulate(RelName, QueryRef),
    /// Sequential composition.
    Seq(Vec<Stmt>),
    /// `while guard do body`.
    While(Guard, Box<Stmt>),
}

impl Stmt {
    fn referenced_relations(&self, out: &mut BTreeSet<RelName>) {
        match self {
            Stmt::Assign(r, q) | Stmt::Accumulate(r, q) => {
                out.insert(r.clone());
                out.extend(q.referenced_relations());
            }
            Stmt::Seq(ss) => {
                for s in ss {
                    s.referenced_relations(out);
                }
            }
            Stmt::While(g, body) => {
                out.insert(g.relation().clone());
                body.referenced_relations(out);
            }
        }
    }
}

impl fmt::Debug for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Assign(r, q) => write!(f, "{r} := {}", q.describe()),
            Stmt::Accumulate(r, q) => write!(f, "{r} += {}", q.describe()),
            Stmt::Seq(ss) => {
                write!(f, "{{ ")?;
                for s in ss {
                    write!(f, "{s:?}; ")?;
                }
                write!(f, "}}")
            }
            Stmt::While(g, body) => write!(f, "while {g:?} do {body:?}"),
        }
    }
}

/// A while program: scratch relations, a body, and an output relation.
#[derive(Clone)]
pub struct WhileProgram {
    /// Scratch (assignable) relations with their arities.
    scratch: Schema,
    body: Stmt,
    output: RelName,
    /// Upper bound on executed statements before declaring divergence.
    fuel: usize,
}

/// Default statement budget; generous for test-scale inputs.
const DEFAULT_FUEL: usize = 100_000;

impl WhileProgram {
    /// Build a program.
    ///
    /// `scratch` declares the assignable relations (the output must be one
    /// of them). Input relations are read-only.
    pub fn new(scratch: Schema, body: Stmt, output: impl Into<RelName>) -> Result<Self, EvalError> {
        let output = output.into();
        if scratch.arity(&output).is_none() {
            return Err(EvalError::Rel(rtx_relational::RelError::UnknownRelation {
                rel: output.clone(),
            }));
        }
        Ok(WhileProgram {
            scratch,
            body,
            output,
            fuel: DEFAULT_FUEL,
        })
    }

    /// Override the statement budget.
    pub fn with_fuel(mut self, fuel: usize) -> Self {
        self.fuel = fuel;
        self
    }

    /// The scratch schema.
    pub fn scratch(&self) -> &Schema {
        &self.scratch
    }

    /// The program body.
    pub fn body(&self) -> &Stmt {
        &self.body
    }

    /// The output relation.
    pub fn output(&self) -> &RelName {
        &self.output
    }

    /// Execute on `db`, returning the full final workspace.
    pub fn run(&self, db: &Instance) -> Result<Instance, EvalError> {
        let schema = db.schema().union_compatible(&self.scratch)?;
        let mut ws = db.widen(schema)?;
        let mut fuel = self.fuel;
        self.exec(&self.body, &mut ws, &mut fuel)?;
        Ok(ws)
    }

    fn exec(&self, stmt: &Stmt, ws: &mut Instance, fuel: &mut usize) -> Result<(), EvalError> {
        if *fuel == 0 {
            return Err(EvalError::Diverged { fuel: self.fuel });
        }
        *fuel -= 1;
        match stmt {
            Stmt::Assign(r, q) => {
                self.check_assignable(r)?;
                let rel = q.eval(ws)?;
                ws.set_relation(r.clone(), rel)?;
                Ok(())
            }
            Stmt::Accumulate(r, q) => {
                self.check_assignable(r)?;
                let add = q.eval(ws)?;
                let current = ws.relation(r)?;
                ws.set_relation(r.clone(), current.union(&add)?)?;
                Ok(())
            }
            Stmt::Seq(ss) => {
                for s in ss {
                    self.exec(s, ws, fuel)?;
                }
                Ok(())
            }
            Stmt::While(g, body) => {
                while g.holds(ws)? {
                    if *fuel == 0 {
                        return Err(EvalError::Diverged { fuel: self.fuel });
                    }
                    self.exec(body, ws, fuel)?;
                }
                Ok(())
            }
        }
    }

    fn check_assignable(&self, r: &RelName) -> Result<(), EvalError> {
        if self.scratch.arity(r).is_none() {
            return Err(EvalError::Unsafe {
                reason: format!("assignment to non-scratch relation {r}"),
            });
        }
        Ok(())
    }
}

impl fmt::Debug for WhileProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "while-program[out={}]: {:?}", self.output, self.body)
    }
}

/// A while program used as a query.
#[derive(Clone)]
pub struct WhileQuery {
    program: Arc<WhileProgram>,
    arity: usize,
}

impl WhileQuery {
    /// Wrap a program.
    pub fn new(program: WhileProgram) -> Self {
        let arity = program
            .scratch
            .arity(&program.output)
            .expect("validated by WhileProgram::new");
        WhileQuery {
            program: Arc::new(program),
            arity,
        }
    }

    /// The wrapped program.
    pub fn program(&self) -> &WhileProgram {
        &self.program
    }
}

impl Query for WhileQuery {
    fn arity(&self) -> usize {
        self.arity
    }

    fn eval(&self, db: &Instance) -> Result<Relation, EvalError> {
        let ws = self.program.run(db)?;
        Ok(ws.relation(&self.program.output)?)
    }

    fn is_monotone_syntactic(&self) -> bool {
        false // while-programs are not syntactically monotone in general
    }

    fn referenced_relations(&self) -> BTreeSet<RelName> {
        let mut out = BTreeSet::new();
        self.program.body.referenced_relations(&mut out);
        out
    }

    fn describe(&self) -> String {
        format!("{:?}", self.program)
    }
}

impl fmt::Debug for WhileQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom;
    use crate::cq::CqBuilder;
    use crate::fo::{FoQuery, Formula};
    use crate::term::Term;
    use rtx_relational::{fact, tuple};

    fn edges(pairs: &[(i64, i64)]) -> Instance {
        let sch = Schema::new().with("E", 2);
        let mut i = Instance::empty(sch);
        for &(a, b) in pairs {
            i.insert_fact(fact!("E", a, b)).unwrap();
        }
        i
    }

    fn q(r: crate::cq::CqRule) -> QueryRef {
        Arc::new(crate::cq::UcqQuery::single(r))
    }

    /// Transitive closure as a while-program:
    ///   T := E; Delta := E;
    ///   while Delta ≠ ∅ { New := T∘E \ T ; T := T ∪ New; Delta := New }
    fn tc_while() -> WhileProgram {
        let scratch = Schema::new().with("T", 2).with("Delta", 2).with("New", 2);
        let copy_e = CqBuilder::head(vec![Term::var("X"), Term::var("Y")])
            .when(atom!("E"; @"X", @"Y"))
            .build()
            .unwrap();
        let compose = CqBuilder::head(vec![Term::var("X"), Term::var("Z")])
            .when(atom!("T"; @"X", @"Y"))
            .when(atom!("E"; @"Y", @"Z"))
            .unless(atom!("T"; @"X", @"Z"))
            .build()
            .unwrap();
        let copy_new = CqBuilder::head(vec![Term::var("X"), Term::var("Y")])
            .when(atom!("New"; @"X", @"Y"))
            .build()
            .unwrap();
        let body = Stmt::Seq(vec![
            Stmt::Assign("T".into(), q(copy_e.clone())),
            Stmt::Assign("Delta".into(), q(copy_e)),
            Stmt::While(
                Guard::NonEmpty("Delta".into()),
                Box::new(Stmt::Seq(vec![
                    Stmt::Assign("New".into(), q(compose)),
                    Stmt::Accumulate("T".into(), q(copy_new.clone())),
                    Stmt::Assign("Delta".into(), q(copy_new)),
                ])),
            ),
        ]);
        WhileProgram::new(scratch, body, "T").unwrap()
    }

    #[test]
    fn tc_as_while_program() {
        let db = edges(&[(1, 2), (2, 3), (3, 4)]);
        let out = WhileQuery::new(tc_while()).eval(&db).unwrap();
        assert_eq!(out.len(), 6);
        assert!(out.contains(&tuple![1, 4]));
    }

    #[test]
    fn tc_while_on_cycle_terminates() {
        let db = edges(&[(1, 2), (2, 3), (3, 1)]);
        let out = WhileQuery::new(tc_while()).eval(&db).unwrap();
        assert_eq!(out.len(), 9);
    }

    #[test]
    fn divergent_loop_hits_fuel() {
        // while S empty do T := T  — never terminates when S is empty
        let scratch = Schema::new().with("T", 1);
        let copy_t = CqBuilder::head(vec![Term::var("X")])
            .when(atom!("T"; @"X"))
            .build()
            .unwrap();
        let body = Stmt::While(
            Guard::Empty("S".into()),
            Box::new(Stmt::Assign("T".into(), q(copy_t))),
        );
        let p = WhileProgram::new(scratch, body, "T")
            .unwrap()
            .with_fuel(100);
        let sch = Schema::new().with("S", 1);
        let db = Instance::empty(sch);
        assert!(matches!(
            WhileQuery::new(p).eval(&db),
            Err(EvalError::Diverged { .. })
        ));
    }

    #[test]
    fn assignment_to_input_is_rejected() {
        let scratch = Schema::new().with("T", 2);
        let copy = CqBuilder::head(vec![Term::var("X"), Term::var("Y")])
            .when(atom!("E"; @"X", @"Y"))
            .build()
            .unwrap();
        let body = Stmt::Assign("E".into(), q(copy));
        // E is not scratch
        let p = WhileProgram::new(scratch, body, "T").unwrap();
        assert!(matches!(
            p.run(&edges(&[(1, 2)])),
            Err(EvalError::Unsafe { .. })
        ));
    }

    #[test]
    fn output_must_be_scratch() {
        let scratch = Schema::new().with("T", 2);
        let body = Stmt::Seq(vec![]);
        assert!(WhileProgram::new(scratch, body, "Missing").is_err());
    }

    #[test]
    fn fo_queries_compose_with_while() {
        // one FO assignment: T := complement of E over adom
        let scratch = Schema::new().with("T", 2);
        let comp = FoQuery::new(
            ["X", "Y"],
            Formula::not(Formula::atom(atom!("E"; @"X", @"Y"))),
        )
        .unwrap();
        let body = Stmt::Assign("T".into(), Arc::new(comp) as QueryRef);
        let p = WhileProgram::new(scratch, body, "T").unwrap();
        let out = WhileQuery::new(p).eval(&edges(&[(1, 2)])).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn referenced_relations_cover_guards_and_queries() {
        let wq = WhileQuery::new(tc_while());
        let refs = wq.referenced_relations();
        assert!(refs.contains(&"E".into()));
        assert!(refs.contains(&"T".into()));
        assert!(refs.contains(&"Delta".into()));
    }

    #[test]
    fn empty_guard_variant() {
        // while Out empty do Out += E  — runs exactly once when E nonempty
        let scratch = Schema::new().with("Out", 2);
        let copy = CqBuilder::head(vec![Term::var("X"), Term::var("Y")])
            .when(atom!("E"; @"X", @"Y"))
            .build()
            .unwrap();
        let body = Stmt::While(
            Guard::Empty("Out".into()),
            Box::new(Stmt::Accumulate("Out".into(), q(copy))),
        );
        let p = WhileProgram::new(scratch, body, "Out")
            .unwrap()
            .with_fuel(10);
        let out = WhileQuery::new(p.clone()).eval(&edges(&[(1, 2)])).unwrap();
        assert_eq!(out.len(), 1);
        // with empty E it diverges (guard never falsified)
        assert!(WhileQuery::new(p).eval(&edges(&[])).is_err());
    }
}

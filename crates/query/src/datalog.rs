//! Datalog, stratified Datalog, and nonrecursive Datalog.
//!
//! Implements naive and semi-naive bottom-up evaluation with stratified
//! negation. The immediate-consequence operator `T_P` is exposed
//! separately because the paper's Theorem 6(5) builds an oblivious,
//! inflationary transducer whose insertion queries apply `T_P` once per
//! heartbeat.

use crate::error::EvalError;
use crate::frame::Frame;
use crate::incremental::FixpointStats;
use crate::plan::{self, JoinMode};
use crate::query::Query;
use crate::term::{Atom, Bindings, Term, Var};
use rtx_relational::{Fact, Instance, RelName, Relation, Run, Schema, Tuple};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// A body literal.
#[derive(Clone, PartialEq, Eq)]
pub enum Literal {
    /// A positive atom.
    Pos(Atom),
    /// A negated atom (stratified semantics).
    Neg(Atom),
    /// A nonequality constraint `t1 ≠ t2`.
    Diseq(Term, Term),
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Pos(a) => write!(f, "{a}"),
            Literal::Neg(a) => write!(f, "¬{a}"),
            Literal::Diseq(x, y) => write!(f, "{x} ≠ {y}"),
        }
    }
}

/// A Datalog rule `head ← body`.
#[derive(Clone)]
pub struct Rule {
    head: Atom,
    body: Vec<Literal>,
    /// Join orders for the positive atoms (index 0: no atom pinned;
    /// index i+1: atom i pinned first, as when atom i joins the
    /// semi-naive delta). A pure function of `body`, computed lazily on
    /// the first indexed evaluation and cached so the per-firing hot
    /// path never replans — and so scan-only evaluations (the ablation
    /// baseline) never pay for planning at all.
    plans: std::sync::OnceLock<Vec<Vec<usize>>>,
}

// `plans` is a cache of a pure function of `body`; equality is over the
// logical rule only.
impl PartialEq for Rule {
    fn eq(&self, other: &Self) -> bool {
        self.head == other.head && self.body == other.body
    }
}

impl Eq for Rule {}

impl Rule {
    /// Build a rule, validating safety: every head variable, negated-atom
    /// variable, and nonequality variable must occur in a positive body
    /// atom.
    pub fn new(head: Atom, body: Vec<Literal>) -> Result<Self, EvalError> {
        let mut pos_vars: BTreeSet<Var> = BTreeSet::new();
        for l in &body {
            if let Literal::Pos(a) = l {
                pos_vars.extend(a.vars());
            }
        }
        let mut need: Vec<(&str, Var)> = Vec::new();
        for v in head.vars() {
            need.push(("head", v));
        }
        for l in &body {
            match l {
                Literal::Pos(_) => {}
                Literal::Neg(a) => {
                    for v in a.vars() {
                        need.push(("negated atom", v));
                    }
                }
                Literal::Diseq(x, y) => {
                    for t in [x, y] {
                        if let Term::Var(v) = t {
                            need.push(("nonequality", *v));
                        }
                    }
                }
            }
        }
        for (what, v) in need {
            if !pos_vars.contains(&v) {
                return Err(EvalError::Unsafe {
                    reason: format!("{what} variable {v} not bound by a positive body atom"),
                });
            }
        }
        Ok(Rule {
            head,
            body,
            plans: std::sync::OnceLock::new(),
        })
    }

    /// The cached join order for the given pinned delta atom.
    fn plan(&self, pinned: Option<usize>) -> &[usize] {
        let plans = self.plans.get_or_init(|| {
            let atoms: Vec<&Atom> = self
                .body
                .iter()
                .filter_map(|l| match l {
                    Literal::Pos(a) => Some(a),
                    _ => None,
                })
                .collect();
            let mut plans = Vec::with_capacity(atoms.len() + 1);
            plans.push(plan::plan_order(&atoms, None));
            for i in 0..atoms.len() {
                plans.push(plan::plan_order(&atoms, Some(i)));
            }
            plans
        });
        &plans[pinned.map(|i| i + 1).unwrap_or(0)]
    }

    /// The head atom.
    pub fn head(&self) -> &Atom {
        &self.head
    }

    /// The body literals.
    pub fn body(&self) -> &[Literal] {
        &self.body
    }

    /// Does the body contain a negated atom?
    pub fn has_negation(&self) -> bool {
        self.body.iter().any(|l| matches!(l, Literal::Neg(_)))
    }

    /// Evaluate the rule against `pos_db` for positive atoms and `neg_db`
    /// for negated atoms (these differ under stratified semantics only in
    /// that `neg_db` must already be complete). When `delta` is given as
    /// `(index, relation)`, the positive atom at `index` is joined against
    /// that delta relation instead of its `pos_db` relation (semi-naive
    /// evaluation).
    fn derive(
        &self,
        pos_db: &Instance,
        neg_db: &Instance,
        delta: Option<(usize, &Relation)>,
        mode: JoinMode,
        out: &mut Vec<Tuple>,
    ) -> Result<(), EvalError> {
        let envs = match mode {
            JoinMode::Scan => self.join_positive_scan(pos_db, delta)?,
            JoinMode::Indexed => self.join_positive_indexed(pos_db, delta)?,
        };
        if envs.is_empty() {
            // A rule with no positive atoms still yields one empty
            // binding; an empty vector here means some join failed.
            return Ok(());
        }
        // filters
        'env: for env in envs {
            for l in &self.body {
                match l {
                    Literal::Pos(_) => {}
                    Literal::Neg(a) => {
                        let rel = neg_db.relation(&a.pred)?;
                        let t = a.instantiate(&env).ok_or_else(|| EvalError::Unsafe {
                            reason: format!("negated atom {a} unbound"),
                        })?;
                        if rel.contains(&t) {
                            continue 'env;
                        }
                    }
                    Literal::Diseq(x, y) => {
                        let (vx, vy) = (x.resolve(&env), y.resolve(&env));
                        match (vx, vy) {
                            (Some(a), Some(b)) if a != b => {}
                            (Some(_), Some(_)) => continue 'env,
                            _ => {
                                return Err(EvalError::Unsafe {
                                    reason: "nonequality over unbound variable".into(),
                                })
                            }
                        }
                    }
                }
            }
            let t = self
                .head
                .instantiate(&env)
                .ok_or_else(|| EvalError::Unsafe {
                    reason: "head unbound".into(),
                })?;
            out.push(t);
        }
        Ok(())
    }

    /// Columnar rule firing: the whole body — joins, stratified-negation
    /// and nonequality filters, head projection — evaluated directly
    /// over sorted runs via [`Frame`], returning the derived head facts
    /// as a sorted, deduplicated [`Run`]. Returns `Ok(None)` when some
    /// source relation is not columnar, in which case the caller must
    /// take the generic [`Rule::derive`] path (that is exactly what the
    /// `RTX_STORAGE=btree` oracle forces).
    ///
    /// `mode` keeps its meaning: `Scan` joins in original literal order
    /// scanning every run row per binding; `Indexed` joins in planned
    /// order probing run views on the bound columns.
    fn derive_run(
        &self,
        pos_db: &Instance,
        neg_db: &Instance,
        delta: Option<(usize, &Relation)>,
        mode: JoinMode,
    ) -> Result<Option<Run>, EvalError> {
        let atoms: Vec<&Atom> = self
            .body
            .iter()
            .filter_map(|l| match l {
                Literal::Pos(a) => Some(a),
                _ => None,
            })
            .collect();
        let head_arity = self.head.arity();
        let mut runs: Vec<Arc<Run>> = Vec::with_capacity(atoms.len());
        for (i, a) in atoms.iter().enumerate() {
            let src = match delta {
                Some((d, rel)) if d == i => {
                    if rel.arity() != a.arity() {
                        return Err(EvalError::Rel(rtx_relational::RelError::ArityMismatch {
                            rel: a.pred.clone(),
                            expected: rel.arity(),
                            found: a.arity(),
                        }));
                    }
                    if rel.is_empty() {
                        None
                    } else {
                        Some(rel)
                    }
                }
                _ => plan::lookup(pos_db, a)?,
            };
            match src {
                // Some atom's relation is empty: the conjunction is empty.
                None => return Ok(Some(Run::empty(head_arity))),
                Some(rel) => match rel.columnar_run() {
                    None => return Ok(None),
                    Some(run) => runs.push(run),
                },
            }
        }
        let mut neg_runs: Vec<Option<Arc<Run>>> = Vec::new();
        for l in &self.body {
            if let Literal::Neg(a) = l {
                match plan::lookup(neg_db, a)? {
                    None => neg_runs.push(None), // empty: filters nothing
                    Some(rel) => match rel.columnar_run() {
                        None => return Ok(None),
                        Some(run) => neg_runs.push(Some(run)),
                    },
                }
            }
        }

        let indexed = mode == JoinMode::Indexed;
        let order: Vec<usize> = match mode {
            JoinMode::Scan => (0..atoms.len()).collect(),
            JoinMode::Indexed => self.plan(delta.map(|(i, _)| i)).to_vec(),
        };
        let mut frame = Frame::unit();
        for &i in &order {
            frame = frame.join_atom(atoms[i], &runs[i], indexed);
            if frame.is_empty() {
                return Ok(Some(Run::empty(head_arity)));
            }
        }
        let mut negs = neg_runs.iter();
        for l in &self.body {
            match l {
                Literal::Pos(_) => {}
                Literal::Neg(a) => {
                    let run = negs.next().expect("one run slot per negated atom");
                    if let Some(run) = run {
                        frame.retain_not_in(a, run)?;
                    }
                }
                Literal::Diseq(x, y) => frame.retain_diseq(x, y)?,
            }
            if frame.is_empty() {
                return Ok(Some(Run::empty(head_arity)));
            }
        }
        frame.project(&self.head.terms).map(Some)
    }

    /// One rule firing as a sorted run of head facts: the columnar
    /// executor when every source is columnar, else the generic path
    /// with its output sorted into a run.
    fn derive_to_run(
        &self,
        pos_db: &Instance,
        neg_db: &Instance,
        delta: Option<(usize, &Relation)>,
        mode: JoinMode,
    ) -> Result<Run, EvalError> {
        if let Some(run) = self.derive_run(pos_db, neg_db, delta, mode)? {
            return Ok(run);
        }
        let mut tuples = Vec::new();
        self.derive(pos_db, neg_db, delta, mode, &mut tuples)?;
        tuples.sort_unstable();
        tuples.dedup();
        Ok(Run::from_sorted(self.head.arity(), tuples.iter()))
    }

    /// The seed join loop: original literal order, full-scan joins,
    /// owned relation lookups. Kept verbatim as the `JoinMode::Scan`
    /// baseline the benches and property tests measure against.
    fn join_positive_scan(
        &self,
        pos_db: &Instance,
        delta: Option<(usize, &Relation)>,
    ) -> Result<Vec<Bindings>, EvalError> {
        let mut envs: Vec<Bindings> = vec![Bindings::new()];
        let mut pos_index = 0usize;
        for l in &self.body {
            if let Literal::Pos(a) = l {
                let owned;
                let rel = match delta {
                    Some((i, d)) if i == pos_index => d,
                    _ => {
                        owned = pos_db.relation(&a.pred)?;
                        &owned
                    }
                };
                if rel.arity() != a.arity() {
                    return Err(EvalError::Rel(rtx_relational::RelError::ArityMismatch {
                        rel: a.pred.clone(),
                        expected: rel.arity(),
                        found: a.arity(),
                    }));
                }
                envs = a.join(rel, &envs);
                if envs.is_empty() {
                    return Ok(envs);
                }
                pos_index += 1;
            }
        }
        Ok(envs)
    }

    /// The planned join loop: literals reordered by bound-variable
    /// coverage (the delta atom, if any, pinned first), relations
    /// borrowed so their cached indexes persist across firings, and
    /// each step probing an index on the already-bound columns.
    fn join_positive_indexed(
        &self,
        pos_db: &Instance,
        delta: Option<(usize, &Relation)>,
    ) -> Result<Vec<Bindings>, EvalError> {
        let atoms: Vec<&Atom> = self
            .body
            .iter()
            .filter_map(|l| match l {
                Literal::Pos(a) => Some(a),
                _ => None,
            })
            .collect();
        if atoms.is_empty() {
            return Ok(vec![Bindings::new()]);
        }
        let mut sources: Vec<Option<&Relation>> = Vec::with_capacity(atoms.len());
        for (i, a) in atoms.iter().enumerate() {
            let src = match delta {
                Some((d, rel)) if d == i => {
                    if rel.arity() != a.arity() {
                        return Err(EvalError::Rel(rtx_relational::RelError::ArityMismatch {
                            rel: a.pred.clone(),
                            expected: rel.arity(),
                            found: a.arity(),
                        }));
                    }
                    if rel.is_empty() {
                        None
                    } else {
                        Some(rel)
                    }
                }
                _ => plan::lookup(pos_db, a)?,
            };
            sources.push(src);
        }
        if sources.iter().any(Option::is_none) {
            // Some atom's relation is empty: the conjunction is empty.
            return Ok(Vec::new());
        }
        let order = self.plan(delta.map(|(i, _)| i));
        let mut envs: Vec<Bindings> = vec![Bindings::new()];
        for &i in order {
            let rel = sources[i].expect("checked non-empty above");
            envs = atoms[i].join_indexed(rel, &envs);
            if envs.is_empty() {
                return Ok(envs);
            }
        }
        Ok(envs)
    }

    fn count_pos(&self) -> usize {
        self.body
            .iter()
            .filter(|l| matches!(l, Literal::Pos(_)))
            .count()
    }

    fn pos_pred(&self, index: usize) -> Option<&RelName> {
        self.body
            .iter()
            .filter_map(|l| match l {
                Literal::Pos(a) => Some(&a.pred),
                _ => None,
            })
            .nth(index)
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ← ", self.head)?;
        if self.body.is_empty() {
            return write!(f, "⊤");
        }
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l:?}")?;
        }
        Ok(())
    }
}

/// Evaluation strategy for fixpoint computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvalStrategy {
    /// Re-derive everything each round.
    Naive,
    /// Join each rule against the per-round delta (default).
    SemiNaive,
}

/// Disjoint sorted runs in decreasing size order — the fixpoint
/// loop's write-buffer. New runs merge into the smallest level, and a
/// level folds into the one below only once it reaches a quarter of
/// its size, so membership checks touch few runs while no fact is
/// endlessly re-merged through the big bottom level (the O(rounds ×
/// total) rebuild a single accumulator run would cost).
#[derive(Default)]
struct Levels(Vec<Run>);

impl Levels {
    /// `run` minus every fact held in the levels.
    fn subtract(&self, mut run: Run) -> Run {
        for level in &self.0 {
            if run.is_empty() {
                break;
            }
            run = run.difference(level);
        }
        run
    }

    fn push(&mut self, run: Run) {
        if run.is_empty() {
            return;
        }
        match self.0.len() {
            0 => self.0.push(run),
            1 if run.len() >= self.0[0].len() => self.0[0] = self.0[0].union(&run),
            1 => self.0.push(run),
            _ => {
                self.0[1] = self.0[1].union(&run);
                if self.0[1].len() >= self.0[0].len() {
                    let recent = self.0.pop().expect("two levels");
                    self.0[0] = self.0[0].union(&recent);
                }
            }
        }
    }

    /// Union of all levels, draining them. `None` when empty.
    fn fold(&mut self) -> Option<Run> {
        let mut runs = self.0.drain(..);
        let first = runs.next()?;
        Some(runs.fold(first, |a, b| a.union(&b)))
    }
}

/// Per-stratum derivation counters filled in by the fixpoint loops:
/// `considered` counts facts produced by rule firings before the
/// novelty check (within-firing duplicates already folded), `derived`
/// counts the novel facts that entered the fixpoint. The arithmetic is
/// O(1) per firing on top of work the loops do anyway, so the counters
/// are always on.
#[derive(Clone, Copy, Default)]
struct StratumTally {
    considered: u64,
    derived: u64,
}

/// A Datalog program: a finite set of rules.
#[derive(Clone, PartialEq, Eq)]
pub struct Program {
    rules: Vec<Rule>,
    /// Arity signature of every predicate mentioned.
    signature: Schema,
    idb: BTreeSet<RelName>,
    /// Stratification computed once at construction (the Dedalus
    /// runtime evaluates the same program thousands of times per run;
    /// re-stratifying per evaluation was measurable). Non-stratifiable
    /// programs keep the error here and surface it at evaluation, like
    /// the on-demand computation did.
    strata: Result<Vec<BTreeSet<RelName>>, EvalError>,
}

impl Program {
    /// Build a program, validating arity-consistency across rules.
    pub fn new(rules: Vec<Rule>) -> Result<Self, EvalError> {
        let mut signature = Schema::new();
        let mut idb = BTreeSet::new();
        for r in &rules {
            signature.declare(r.head.pred.clone(), r.head.arity())?;
            idb.insert(r.head.pred.clone());
            for l in &r.body {
                match l {
                    Literal::Pos(a) | Literal::Neg(a) => {
                        signature.declare(a.pred.clone(), a.arity())?;
                    }
                    Literal::Diseq(_, _) => {}
                }
            }
        }
        let strata = Self::compute_strata(&rules, &idb);
        Ok(Program {
            rules,
            signature,
            idb,
            strata,
        })
    }

    /// The rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Predicates defined by rule heads (the IDB).
    pub fn idb_predicates(&self) -> &BTreeSet<RelName> {
        &self.idb
    }

    /// Predicates only read (the EDB).
    pub fn edb_predicates(&self) -> BTreeSet<RelName> {
        self.signature
            .names()
            .filter(|n| !self.idb.contains(*n))
            .cloned()
            .collect()
    }

    /// Arity signature of all mentioned predicates.
    pub fn signature(&self) -> &Schema {
        &self.signature
    }

    /// Does any rule use negation?
    pub fn has_negation(&self) -> bool {
        self.rules.iter().any(Rule::has_negation)
    }

    /// Is the predicate dependency graph acyclic (nonrecursive Datalog)?
    pub fn is_nonrecursive(&self) -> bool {
        // DFS for a cycle among IDB predicates.
        let mut deps: BTreeMap<&RelName, BTreeSet<&RelName>> = BTreeMap::new();
        for r in &self.rules {
            let entry = deps.entry(&r.head.pred).or_default();
            for l in &r.body {
                if let Literal::Pos(a) | Literal::Neg(a) = l {
                    if self.idb.contains(&a.pred) {
                        entry.insert(&a.pred);
                    }
                }
            }
        }
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            Visiting,
            Done,
        }
        fn dfs<'a>(
            n: &'a RelName,
            deps: &BTreeMap<&'a RelName, BTreeSet<&'a RelName>>,
            marks: &mut BTreeMap<&'a RelName, Mark>,
        ) -> bool {
            match marks.get(n) {
                Some(Mark::Visiting) => return false,
                Some(Mark::Done) => return true,
                None => {}
            }
            marks.insert(n, Mark::Visiting);
            if let Some(succ) = deps.get(n) {
                for s in succ {
                    if !dfs(s, deps, marks) {
                        return false;
                    }
                }
            }
            marks.insert(n, Mark::Done);
            true
        }
        let mut marks = BTreeMap::new();
        self.idb.iter().all(|p| dfs(p, &deps, &mut marks))
    }

    /// A stratification: a list of strata, each a set of IDB
    /// predicates, such that negation only reaches strictly lower
    /// strata. Computed once at construction; this returns the cache.
    pub fn stratify(&self) -> Result<Vec<BTreeSet<RelName>>, EvalError> {
        self.strata.clone()
    }

    fn compute_strata(
        rules: &[Rule],
        idb: &BTreeSet<RelName>,
    ) -> Result<Vec<BTreeSet<RelName>>, EvalError> {
        let mut stratum: BTreeMap<RelName, usize> = idb.iter().map(|p| (p.clone(), 0)).collect();
        let n = idb.len().max(1);
        // Bellman-Ford-style relaxation; a stratum exceeding the number of
        // IDB predicates certifies a negative cycle.
        for _ in 0..=n {
            let mut changed = false;
            for r in rules {
                let head_s = stratum[&r.head.pred];
                let mut required = head_s;
                for l in &r.body {
                    match l {
                        Literal::Pos(a) => {
                            if let Some(&s) = stratum.get(&a.pred) {
                                required = required.max(s);
                            }
                        }
                        Literal::Neg(a) => {
                            if let Some(&s) = stratum.get(&a.pred) {
                                required = required.max(s + 1);
                            }
                        }
                        Literal::Diseq(_, _) => {}
                    }
                }
                if required > head_s {
                    if required > n {
                        return Err(EvalError::NotStratifiable {
                            pred: r.head.pred.clone(),
                        });
                    }
                    stratum.insert(r.head.pred.clone(), required);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Re-check: a final pass must be quiescent, otherwise a negative
        // cycle kept pumping.
        for r in rules {
            let head_s = stratum[&r.head.pred];
            for l in &r.body {
                match l {
                    Literal::Pos(a) => {
                        if let Some(&s) = stratum.get(&a.pred) {
                            if s > head_s {
                                return Err(EvalError::NotStratifiable {
                                    pred: r.head.pred.clone(),
                                });
                            }
                        }
                    }
                    Literal::Neg(a) => {
                        if let Some(&s) = stratum.get(&a.pred) {
                            if s >= head_s {
                                return Err(EvalError::NotStratifiable {
                                    pred: r.head.pred.clone(),
                                });
                            }
                        }
                    }
                    Literal::Diseq(_, _) => {}
                }
            }
        }
        let max = stratum.values().copied().max().unwrap_or(0);
        let mut out = vec![BTreeSet::new(); max + 1];
        for (p, s) in stratum {
            out[s].insert(p);
        }
        out.retain(|s| !s.is_empty());
        Ok(out)
    }

    /// Working schema for evaluation: the program signature merged with
    /// the database schema.
    fn working_schema(&self, db: &Instance) -> Result<Schema, EvalError> {
        Ok(db.schema().union_compatible(&self.signature)?)
    }

    /// Evaluate to fixpoint with stratified semantics.
    ///
    /// Facts in `db` for IDB predicates (if its schema declares them) are
    /// used as seeds — the distributed constructions store accumulated
    /// IDB facts in transducer memory between heartbeats.
    pub fn eval(&self, db: &Instance) -> Result<Instance, EvalError> {
        self.eval_with(db, EvalStrategy::SemiNaive)
    }

    /// Evaluate with an explicit strategy (naive kept for the ablation
    /// benchmark).
    pub fn eval_with(&self, db: &Instance, strategy: EvalStrategy) -> Result<Instance, EvalError> {
        self.eval_with_mode(db, strategy, JoinMode::default())
    }

    /// Evaluate with explicit strategy *and* join mode (the scan mode is
    /// the measurable baseline for the indexed-join ablation).
    pub fn eval_with_mode(
        &self,
        db: &Instance,
        strategy: EvalStrategy,
        mode: JoinMode,
    ) -> Result<Instance, EvalError> {
        Ok(self.eval_counted(db, strategy, mode)?.0)
    }

    /// Evaluate like [`Program::eval`], also returning a
    /// [`FixpointStats`] whose per-stratum counters record how many
    /// facts each stratum's rules produced before the novelty check
    /// (`stratum_considered`) and how many were novel
    /// (`stratum_derived`). These counters are how the magic-sets
    /// suite and `exp_magic` prove a demand-driven evaluation derived
    /// strictly less than full materialization.
    pub fn eval_with_stats(&self, db: &Instance) -> Result<(Instance, FixpointStats), EvalError> {
        self.eval_counted(db, EvalStrategy::SemiNaive, JoinMode::default())
    }

    fn eval_counted(
        &self,
        db: &Instance,
        strategy: EvalStrategy,
        mode: JoinMode,
    ) -> Result<(Instance, FixpointStats), EvalError> {
        // Seed the fixpoint with the database re-housed under the
        // working schema — a structural copy, not a fact-by-fact
        // rebuild (this runs once per Dedalus tick).
        let mut total = if self.schema_covers(db) {
            db.clone()
        } else {
            db.widen(self.working_schema(db)?)?
        };
        let mut stats = FixpointStats::default();
        let strata = self.strata.as_ref().map_err(Clone::clone)?;
        let _eval_span = rtx_obs::trace::span("query", "eval", &[("strata", strata.len() as i64)]);
        for (si, stratum) in strata.iter().enumerate() {
            let rules: Vec<&Rule> = self
                .rules
                .iter()
                .filter(|r| stratum.contains(&r.head.pred))
                .collect();
            let _stratum_span = rtx_obs::trace::span(
                "query",
                "stratum",
                &[("stratum", si as i64), ("rules", rules.len() as i64)],
            );
            let mut tally = StratumTally::default();
            // The run-based fixpoint loops dedup and fold derived
            // facts with galloping run merges; the btree engine keeps
            // the original fact-at-a-time loops as the oracle.
            let columnar = total.mode().uses_runs();
            match (strategy, columnar) {
                (EvalStrategy::Naive, true) => {
                    self.run_naive_runs(&rules, &mut total, mode, &mut tally)?
                }
                (EvalStrategy::Naive, false) => {
                    self.run_naive(&rules, &mut total, mode, &mut tally)?
                }
                (EvalStrategy::SemiNaive, true) => {
                    self.run_seminaive_runs(&rules, stratum, &mut total, mode, &mut tally)?
                }
                (EvalStrategy::SemiNaive, false) => {
                    self.run_seminaive(&rules, stratum, &mut total, mode, &mut tally)?
                }
            }
            if rtx_obs::tracing() {
                rtx_obs::event!(
                    "query",
                    "stratum.tally",
                    "stratum" => si,
                    "considered" => tally.considered,
                    "derived" => tally.derived,
                );
            }
            stats.stratum_considered.push(tally.considered);
            stats.stratum_derived.push(tally.derived);
        }
        if rtx_obs::counting() {
            rtx_obs::registry::add("query.evals", 1);
            rtx_obs::registry::add("query.strata", strata.len() as u64);
            rtx_obs::registry::add("query.considered", stats.eval_considered());
            rtx_obs::registry::add("query.derived", stats.eval_derived());
        }
        Ok((total, stats))
    }

    /// Does `db`'s schema already declare every predicate of the
    /// program signature at the right arity (so widening is a no-op)?
    fn schema_covers(&self, db: &Instance) -> bool {
        self.signature
            .iter()
            .all(|(name, arity)| db.schema().arity(name) == Some(arity))
    }

    fn run_naive(
        &self,
        rules: &[&Rule],
        total: &mut Instance,
        mode: JoinMode,
        tally: &mut StratumTally,
    ) -> Result<(), EvalError> {
        loop {
            let mut derived = Vec::new();
            for r in rules {
                let mut tuples = Vec::new();
                r.derive(total, total, None, mode, &mut tuples)?;
                for t in tuples {
                    derived.push((r.head.pred.clone(), t));
                }
            }
            tally.considered += derived.len() as u64;
            let mut changed = false;
            for (p, t) in derived {
                if total.insert_fact(Fact::new(p, t))? {
                    tally.derived += 1;
                    changed = true;
                }
            }
            if !changed {
                return Ok(());
            }
        }
    }

    fn run_seminaive(
        &self,
        rules: &[&Rule],
        stratum: &BTreeSet<RelName>,
        total: &mut Instance,
        mode: JoinMode,
        tally: &mut StratumTally,
    ) -> Result<(), EvalError> {
        // Per-round deltas are first-class relations keyed by predicate,
        // not whole instances: each rule joins one atom directly against
        // its (small) delta relation.
        let mut delta: BTreeMap<RelName, Relation> = BTreeMap::new();
        let push =
            |map: &mut BTreeMap<RelName, Relation>, pred: &RelName, arity: usize, t: Tuple| {
                map.entry(pred.clone())
                    .or_insert_with(|| Relation::empty(arity))
                    .insert(t)
                    .expect("head tuple arity matches head predicate")
            };
        // Round 0: full evaluation (covers rules without stratum-IDB in
        // the body, and seeds the delta).
        for r in rules {
            let mut tuples = Vec::new();
            r.derive(total, total, None, mode, &mut tuples)?;
            tally.considered += tuples.len() as u64;
            for t in tuples {
                if !total.contains_fact(&Fact::new(r.head.pred.clone(), t.clone())) {
                    push(&mut delta, &r.head.pred, r.head.arity(), t);
                }
            }
        }
        while !delta.is_empty() {
            for (p, rel) in &delta {
                for t in rel.iter() {
                    if total.insert_fact(Fact::new(p.clone(), t.clone()))? {
                        tally.derived += 1;
                    }
                }
            }
            let mut next: BTreeMap<RelName, Relation> = BTreeMap::new();
            for r in rules {
                for i in 0..r.count_pos() {
                    let pred = r.pos_pred(i).expect("index within positive atoms");
                    if !stratum.contains(pred) {
                        continue;
                    }
                    let Some(drel) = delta.get(pred) else {
                        continue; // nothing new for this atom this round
                    };
                    let mut tuples = Vec::new();
                    r.derive(total, total, Some((i, drel)), mode, &mut tuples)?;
                    tally.considered += tuples.len() as u64;
                    for t in tuples {
                        let f = Fact::new(r.head.pred.clone(), t.clone());
                        let fresh = !total.contains_fact(&f)
                            && next.get(&r.head.pred).is_none_or(|rel| !rel.contains(&t));
                        if fresh {
                            push(&mut next, &r.head.pred, r.head.arity(), t);
                        }
                    }
                }
            }
            delta = next;
        }
        Ok(())
    }

    /// Derived facts of one firing not already in `total`'s relation.
    fn fresh_against(total: &Instance, pred: &RelName, derived: Run) -> Run {
        match total.relation_ref(pred) {
            None => derived,
            Some(rel) => match rel.columnar_run() {
                Some(t) => derived.difference(&t),
                None => {
                    // Mixed-mode instance: fall back to per-row checks.
                    let keep: Vec<Tuple> = derived
                        .rows()
                        .iter()
                        .filter(|t| !rel.contains(t))
                        .cloned()
                        .collect();
                    Run::from_sorted(derived.arity(), keep.iter())
                }
            },
        }
    }

    /// Naive fixpoint over runs: each round derives every rule into a
    /// run and folds the union into `total` with run merges.
    fn run_naive_runs(
        &self,
        rules: &[&Rule],
        total: &mut Instance,
        mode: JoinMode,
        tally: &mut StratumTally,
    ) -> Result<(), EvalError> {
        loop {
            let mut derived: Vec<(&RelName, Run)> = Vec::with_capacity(rules.len());
            for r in rules {
                let run = r.derive_to_run(total, total, None, mode)?;
                tally.considered += run.len() as u64;
                derived.push((&r.head.pred, run));
            }
            let mut changed = false;
            for (p, run) in derived {
                let grown = total.absorb_run(p, &run)?;
                tally.derived += grown as u64;
                changed |= grown > 0;
            }
            if !changed {
                return Ok(());
            }
        }
    }

    /// Semi-naive fixpoint over runs: per-round deltas are sorted runs,
    /// novelty checks are run differences, and newly derived facts
    /// accumulate in LSM-style levelled runs per predicate that are
    /// folded into `total` lazily — only when a later firing actually
    /// reads that predicate as a non-delta source (and once at the
    /// end). Linear-recursive programs like transitive closure never
    /// re-read the recursive predicate outside the delta position, so
    /// they skip the O(|total|) per-round rebuild entirely.
    fn run_seminaive_runs(
        &self,
        rules: &[&Rule],
        stratum: &BTreeSet<RelName>,
        total: &mut Instance,
        mode: JoinMode,
        tally: &mut StratumTally,
    ) -> Result<(), EvalError> {
        let push = |map: &mut BTreeMap<RelName, Relation>, pred: &RelName, fresh: &Run| {
            if fresh.is_empty() {
                return;
            }
            match map.get_mut(pred) {
                Some(rel) => {
                    rel.absorb_run(fresh).expect("one arity per head predicate");
                }
                None => {
                    map.insert(pred.clone(), Relation::from_run(fresh.clone()));
                }
            }
        };
        // Facts derived but not yet folded into `total`, as disjoint
        // sorted runs with geometrically growing sizes (merged on push,
        // so each fact takes part in O(log n) merges overall).
        let mut pending: BTreeMap<RelName, Levels> = BTreeMap::new();
        let fresh_of = |total: &Instance,
                        pending: &BTreeMap<RelName, Levels>,
                        pred: &RelName,
                        derived: Run| {
            let vs_total = Self::fresh_against(total, pred, derived);
            match pending.get(pred) {
                Some(levels) => levels.subtract(vs_total),
                None => vs_total,
            }
        };
        // Round 0: full evaluation (covers rules without stratum-IDB in
        // the body, and seeds the delta).
        let mut delta: BTreeMap<RelName, Relation> = BTreeMap::new();
        for r in rules {
            let derived = r.derive_to_run(total, total, None, mode)?;
            tally.considered += derived.len() as u64;
            let fresh = fresh_of(total, &pending, &r.head.pred, derived);
            tally.derived += fresh.len() as u64;
            push(&mut delta, &r.head.pred, &fresh);
            pending.entry(r.head.pred.clone()).or_default().push(fresh);
        }
        while !delta.is_empty() {
            let mut next: BTreeMap<RelName, Relation> = BTreeMap::new();
            for r in rules {
                for i in 0..r.count_pos() {
                    let pred = r.pos_pred(i).expect("index within positive atoms");
                    if !stratum.contains(pred) {
                        continue;
                    }
                    let Some(drel) = delta.get(pred) else {
                        continue; // nothing new for this atom this round
                    };
                    // Non-delta atoms read from `total`: fold any
                    // pending facts for their predicates first.
                    for j in 0..r.count_pos() {
                        if j == i {
                            continue;
                        }
                        let p = r.pos_pred(j).expect("index within positive atoms");
                        if let Some(levels) = pending.get_mut(p) {
                            if let Some(run) = levels.fold() {
                                total.absorb_run(p, &run)?;
                            }
                        }
                    }
                    let derived = r.derive_to_run(total, total, Some((i, drel)), mode)?;
                    tally.considered += derived.len() as u64;
                    if derived.is_empty() {
                        continue;
                    }
                    let fresh = fresh_of(total, &pending, &r.head.pred, derived);
                    tally.derived += fresh.len() as u64;
                    push(&mut next, &r.head.pred, &fresh);
                    pending.entry(r.head.pred.clone()).or_default().push(fresh);
                }
            }
            delta = next;
        }
        for (p, levels) in &mut pending {
            if let Some(run) = levels.fold() {
                total.absorb_run(p, &run)?;
            }
        }
        Ok(())
    }

    /// One application of the immediate-consequence operator `T_P`:
    /// every head fact derivable from `db` in a single rule firing.
    ///
    /// Negation is evaluated against `db` as given — callers are
    /// responsible for only using `T_P` with semipositive programs (the
    /// paper's Theorem 6(5) uses pure Datalog, with no negation at all).
    pub fn tp_step(&self, db: &Instance) -> Result<Instance, EvalError> {
        self.tp_step_with_mode(db, JoinMode::default())
    }

    /// [`Program::tp_step`] with an explicit join mode.
    pub fn tp_step_with_mode(&self, db: &Instance, mode: JoinMode) -> Result<Instance, EvalError> {
        // Fast path: when the database schema already covers the
        // program signature, evaluate against `db` directly instead of
        // materializing a widened copy (this runs twice per Dedalus
        // tick).
        let widened_owned;
        let (widened, schema) = if self.schema_covers(db) {
            (db, db.schema().clone())
        } else {
            let schema = self.working_schema(db)?;
            widened_owned = db.widen(schema.clone())?;
            (&widened_owned, schema)
        };
        let mut out = Instance::empty(schema);
        if widened.mode().uses_runs() {
            for r in &self.rules {
                let run = r.derive_to_run(widened, widened, None, mode)?;
                out.absorb_run(&r.head.pred, &run)?;
            }
        } else {
            for r in &self.rules {
                let mut tuples = Vec::new();
                r.derive(widened, widened, None, mode, &mut tuples)?;
                for t in tuples {
                    out.insert_fact(Fact::new(r.head.pred.clone(), t))?;
                }
            }
        }
        Ok(out)
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{r:?}.")?;
        }
        Ok(())
    }
}

/// A Datalog program used as a query: evaluate to fixpoint, return one
/// designated output predicate.
#[derive(Clone)]
pub struct DatalogQuery {
    program: Program,
    output: RelName,
    arity: usize,
    strategy: EvalStrategy,
    join_mode: JoinMode,
}

impl DatalogQuery {
    /// Build, validating that the output predicate is mentioned.
    pub fn new(program: Program, output: impl Into<RelName>) -> Result<Self, EvalError> {
        let output = output.into();
        let arity = program.signature().arity(&output).ok_or_else(|| {
            EvalError::Rel(rtx_relational::RelError::UnknownRelation {
                rel: output.clone(),
            })
        })?;
        Ok(DatalogQuery {
            program,
            output,
            arity,
            strategy: EvalStrategy::SemiNaive,
            join_mode: JoinMode::default(),
        })
    }

    /// Select an evaluation strategy (ablation hook).
    pub fn with_strategy(mut self, strategy: EvalStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Select a join mode (ablation hook; defaults to indexed).
    pub fn with_join_mode(mut self, mode: JoinMode) -> Self {
        self.join_mode = mode;
        self
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The output predicate.
    pub fn output(&self) -> &RelName {
        &self.output
    }
}

impl Query for DatalogQuery {
    fn arity(&self) -> usize {
        self.arity
    }

    fn eval(&self, db: &Instance) -> Result<Relation, EvalError> {
        let result = self
            .program
            .eval_with_mode(db, self.strategy, self.join_mode)?;
        Ok(result.relation(&self.output)?)
    }

    fn is_monotone_syntactic(&self) -> bool {
        !self.program.has_negation()
    }

    fn referenced_relations(&self) -> BTreeSet<RelName> {
        self.program.signature().names().cloned().collect()
    }

    fn describe(&self) -> String {
        format!("datalog[{}]: {:?}", self.output, self.program)
    }
}

impl fmt::Debug for DatalogQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "datalog[{}]", self.output)
    }
}

/// A single `T_P` application used as a query (the local language of the
/// Theorem 6(5) transducer): returns the immediate consequences for one
/// predicate.
#[derive(Clone)]
pub struct TpQuery {
    program: Program,
    output: RelName,
    arity: usize,
}

impl TpQuery {
    /// Build, validating the output predicate.
    pub fn new(program: Program, output: impl Into<RelName>) -> Result<Self, EvalError> {
        let output = output.into();
        let arity = program.signature().arity(&output).ok_or_else(|| {
            EvalError::Rel(rtx_relational::RelError::UnknownRelation {
                rel: output.clone(),
            })
        })?;
        Ok(TpQuery {
            program,
            output,
            arity,
        })
    }
}

impl Query for TpQuery {
    fn arity(&self) -> usize {
        self.arity
    }

    fn eval(&self, db: &Instance) -> Result<Relation, EvalError> {
        let step = self.program.tp_step(db)?;
        Ok(step.relation(&self.output)?)
    }

    fn is_monotone_syntactic(&self) -> bool {
        !self.program.has_negation()
    }

    fn referenced_relations(&self) -> BTreeSet<RelName> {
        self.program.signature().names().cloned().collect()
    }

    fn describe(&self) -> String {
        format!("T_P[{}]", self.output)
    }
}

impl fmt::Debug for TpQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T_P[{}]", self.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom;
    use rtx_relational::{fact, tuple};

    fn rule(head: Atom, body: Vec<Literal>) -> Rule {
        Rule::new(head, body).unwrap()
    }

    fn tc_program() -> Program {
        Program::new(vec![
            rule(
                atom!("T"; @"X", @"Y"),
                vec![Literal::Pos(atom!("E"; @"X", @"Y"))],
            ),
            rule(
                atom!("T"; @"X", @"Z"),
                vec![
                    Literal::Pos(atom!("T"; @"X", @"Y")),
                    Literal::Pos(atom!("E"; @"Y", @"Z")),
                ],
            ),
        ])
        .unwrap()
    }

    fn edges(pairs: &[(i64, i64)]) -> Instance {
        let sch = Schema::new().with("E", 2);
        let mut i = Instance::empty(sch);
        for &(a, b) in pairs {
            i.insert_fact(fact!("E", a, b)).unwrap();
        }
        i
    }

    #[test]
    fn transitive_closure_chain() {
        let db = edges(&[(1, 2), (2, 3), (3, 4)]);
        let q = DatalogQuery::new(tc_program(), "T").unwrap();
        let out = q.eval(&db).unwrap();
        assert_eq!(out.len(), 6);
        assert!(out.contains(&tuple![1, 4]));
        assert!(q.is_monotone_syntactic());
    }

    #[test]
    fn transitive_closure_cycle() {
        let db = edges(&[(1, 2), (2, 1)]);
        let q = DatalogQuery::new(tc_program(), "T").unwrap();
        let out = q.eval(&db).unwrap();
        assert_eq!(out.len(), 4); // all pairs over {1,2}
    }

    #[test]
    fn naive_equals_seminaive() {
        let db = edges(&[(1, 2), (2, 3), (3, 1), (3, 5), (5, 6)]);
        let semi = DatalogQuery::new(tc_program(), "T")
            .unwrap()
            .eval(&db)
            .unwrap();
        let naive = DatalogQuery::new(tc_program(), "T")
            .unwrap()
            .with_strategy(EvalStrategy::Naive)
            .eval(&db)
            .unwrap();
        assert_eq!(semi, naive);
    }

    #[test]
    fn idb_seeds_from_database_are_used() {
        // T seeded with an extra pair that E alone would not produce.
        let sch = Schema::new().with("E", 2).with("T", 2);
        let db = Instance::from_facts(sch, vec![fact!("E", 1, 2), fact!("T", 7, 8)]).unwrap();
        let out = DatalogQuery::new(tc_program(), "T")
            .unwrap()
            .eval(&db)
            .unwrap();
        assert!(out.contains(&tuple![7, 8]));
        assert!(out.contains(&tuple![1, 2]));
    }

    #[test]
    fn stratified_negation_complement() {
        // unreachable(X) over nodes: node(X), ¬reach(X)
        let p = Program::new(vec![
            rule(atom!("Reach"; @"X"), vec![Literal::Pos(atom!("Src"; @"X"))]),
            rule(
                atom!("Reach"; @"Y"),
                vec![
                    Literal::Pos(atom!("Reach"; @"X")),
                    Literal::Pos(atom!("E"; @"X", @"Y")),
                ],
            ),
            rule(
                atom!("Unreach"; @"X"),
                vec![
                    Literal::Pos(atom!("Node"; @"X")),
                    Literal::Neg(atom!("Reach"; @"X")),
                ],
            ),
        ])
        .unwrap();
        let strata = p.stratify().unwrap();
        assert_eq!(strata.len(), 2);
        assert!(strata[0].contains(&"Reach".into()));
        assert!(strata[1].contains(&"Unreach".into()));

        let sch = Schema::new().with("E", 2).with("Src", 1).with("Node", 1);
        let db = Instance::from_facts(
            sch,
            vec![
                fact!("E", 1, 2),
                fact!("Src", 1),
                fact!("Node", 1),
                fact!("Node", 2),
                fact!("Node", 3),
            ],
        )
        .unwrap();
        let q = DatalogQuery::new(p, "Unreach").unwrap();
        let out = q.eval(&db).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![3]));
        assert!(!q.is_monotone_syntactic());
    }

    #[test]
    fn negative_cycle_rejected() {
        let p = Program::new(vec![
            rule(
                atom!("P"; @"X"),
                vec![
                    Literal::Pos(atom!("S"; @"X")),
                    Literal::Neg(atom!("Q"; @"X")),
                ],
            ),
            rule(
                atom!("Q"; @"X"),
                vec![
                    Literal::Pos(atom!("S"; @"X")),
                    Literal::Neg(atom!("P"; @"X")),
                ],
            ),
        ])
        .unwrap();
        assert!(matches!(
            p.stratify(),
            Err(EvalError::NotStratifiable { .. })
        ));
        let q = DatalogQuery::new(p, "P").unwrap();
        assert!(q.eval(&edges(&[])).is_err());
    }

    #[test]
    fn self_negation_rejected() {
        let p = Program::new(vec![rule(
            atom!("P"; @"X"),
            vec![
                Literal::Pos(atom!("S"; @"X")),
                Literal::Neg(atom!("P"; @"X")),
            ],
        )])
        .unwrap();
        assert!(p.stratify().is_err());
    }

    #[test]
    fn nonrecursive_detection() {
        let nr = Program::new(vec![
            rule(atom!("A"; @"X"), vec![Literal::Pos(atom!("S"; @"X"))]),
            rule(atom!("B"; @"X"), vec![Literal::Pos(atom!("A"; @"X"))]),
        ])
        .unwrap();
        assert!(nr.is_nonrecursive());
        assert!(!tc_program().is_nonrecursive());
    }

    #[test]
    fn edb_idb_split() {
        let p = tc_program();
        assert!(p.idb_predicates().contains(&"T".into()));
        assert!(p.edb_predicates().contains(&"E".into()));
        assert_eq!(p.signature().arity(&"T".into()), Some(2));
    }

    #[test]
    fn arity_conflicts_rejected() {
        let r1 = rule(atom!("P"; @"X"), vec![Literal::Pos(atom!("S"; @"X"))]);
        let r2 = rule(
            atom!("P"; @"X", @"Y"),
            vec![Literal::Pos(atom!("E"; @"X", @"Y"))],
        );
        assert!(Program::new(vec![r1, r2]).is_err());
    }

    #[test]
    fn rule_safety_rejected() {
        assert!(Rule::new(atom!("P"; @"X"), vec![]).is_err());
        assert!(Rule::new(
            atom!("P"; @"X"),
            vec![
                Literal::Pos(atom!("S"; @"X")),
                Literal::Neg(atom!("T"; @"Y"))
            ],
        )
        .is_err());
    }

    #[test]
    fn diseq_literal_filters() {
        let p = Program::new(vec![rule(
            atom!("P"; @"X", @"Y"),
            vec![
                Literal::Pos(atom!("E"; @"X", @"Y")),
                Literal::Diseq(Term::var("X"), Term::var("Y")),
            ],
        )])
        .unwrap();
        let db = edges(&[(1, 1), (1, 2)]);
        let out = DatalogQuery::new(p, "P").unwrap().eval(&db).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![1, 2]));
    }

    #[test]
    fn tp_step_is_single_application() {
        let db = edges(&[(1, 2), (2, 3), (3, 4)]);
        let tp = TpQuery::new(tc_program(), "T").unwrap();
        // one step: only direct edges (the recursive rule needs T facts)
        let s1 = tp.eval(&db).unwrap();
        assert_eq!(s1.len(), 3);
        // feed the step back in as T facts: length-2 paths appear
        let sch = Schema::new().with("E", 2).with("T", 2);
        let mut db2 = db.widen(sch).unwrap();
        for t in s1.iter() {
            db2.insert_fact(rtx_relational::Fact::new(RelName::new("T"), t.clone()))
                .unwrap();
        }
        let s2 = tp.eval(&db2).unwrap();
        assert!(s2.contains(&tuple![1, 3]));
        assert!(!s2.contains(&tuple![1, 4]));
    }

    #[test]
    fn monotonicity_of_positive_programs_spotcheck() {
        let small = edges(&[(1, 2), (2, 3)]);
        let mut big = small.clone();
        big.insert_fact(fact!("E", 3, 4)).unwrap();
        let q = DatalogQuery::new(tc_program(), "T").unwrap();
        assert!(q.eval(&small).unwrap().is_subset(&q.eval(&big).unwrap()));
    }

    #[test]
    fn same_generation_classic() {
        // sg(X,Y) ← flat(X,Y); sg(X,Y) ← up(X,A), sg(A,B), down(B,Y)
        let p = Program::new(vec![
            rule(
                atom!("Sg"; @"X", @"Y"),
                vec![Literal::Pos(atom!("Flat"; @"X", @"Y"))],
            ),
            rule(
                atom!("Sg"; @"X", @"Y"),
                vec![
                    Literal::Pos(atom!("Up"; @"X", @"A")),
                    Literal::Pos(atom!("Sg"; @"A", @"B")),
                    Literal::Pos(atom!("Down"; @"B", @"Y")),
                ],
            ),
        ])
        .unwrap();
        let sch = Schema::new().with("Flat", 2).with("Up", 2).with("Down", 2);
        let db = Instance::from_facts(
            sch,
            vec![
                fact!("Up", "a", "b"),
                fact!("Up", "c", "d"),
                fact!("Flat", "b", "d"),
                fact!("Down", "d", "e"),
                fact!("Down", "b", "f"),
            ],
        )
        .unwrap();
        let out = DatalogQuery::new(p, "Sg").unwrap().eval(&db).unwrap();
        assert!(out.contains(&tuple!["b", "d"]));
        assert!(out.contains(&tuple!["a", "e"])); // up(a,b), sg(b,d), down(d,e)
    }

    #[test]
    fn tp_of_nullary_head() {
        let p = Program::new(vec![rule(
            atom!("Found"),
            vec![Literal::Pos(atom!("E"; @"X", @"Y"))],
        )])
        .unwrap();
        let q = TpQuery::new(p, "Found").unwrap();
        assert!(q.eval(&edges(&[(1, 2)])).unwrap().as_bool());
        assert!(!q.eval(&edges(&[])).unwrap().as_bool());
    }
}

//! The generic query interface.
//!
//! The paper's transducer model is parameterized by a local query
//! language `L`; every language in this crate implements [`Query`], and a
//! transducer holds its queries as `Arc<dyn Query>` — so FO-transducers,
//! UCQ¬-transducers, Datalog-transducers, while-transducers and
//! "abstract" transducers (native Rust, modelling a computationally
//! complete `L`) are all the same machine with different query objects.

use crate::error::EvalError;
use rtx_relational::{Instance, RelName, Relation};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A `k`-ary query: a (partial) function from instances to `k`-ary
/// relations (paper, Section 2).
///
/// Implementations must be deterministic: `eval` on equal instances must
/// return equal relations. Genericity (invariance under permutations of
/// **dom**) holds for all constant-free queries of the declarative
/// languages in this crate and can be checked empirically via
/// `rtx-calm`'s genericity analysis.
pub trait Query: fmt::Debug + Send + Sync {
    /// Output arity `k`.
    fn arity(&self) -> usize;

    /// Evaluate on an instance.
    fn eval(&self, db: &Instance) -> Result<Relation, EvalError>;

    /// Conservative *syntactic* monotonicity: `true` guarantees the query
    /// is monotone; `false` means "unknown". Positive-existential FO,
    /// negation-free UCQ and negation-free Datalog return `true`.
    fn is_monotone_syntactic(&self) -> bool {
        false
    }

    /// Every relation name the query may read. Used for the paper's
    /// *obliviousness* check (does the transducer mention `Id`/`All`?).
    fn referenced_relations(&self) -> BTreeSet<RelName>;

    /// Syntactically guaranteed to return the empty relation on every
    /// input — the paper's *inflationary* transducers have such deletion
    /// queries.
    fn is_always_empty(&self) -> bool {
        false
    }

    /// A short human-readable description.
    fn describe(&self) -> String;
}

/// Shared handle to a query; the form stored inside transducers.
///
/// [`Query`] requires `Send + Sync`, so a `QueryRef` (and everything
/// built from it, like a transducer) can be shared across the worker
/// threads of `rtx-net`'s sharded executor without cloning. Cached
/// evaluation state (join plans, stratifications) lives behind
/// `OnceLock`s and is therefore thread-safe too.
pub type QueryRef = Arc<dyn Query>;

const _: () = {
    const fn assert_send_sync<T: Send + Sync + ?Sized>() {}
    assert_send_sync::<dyn Query>();
    assert_send_sync::<QueryRef>();
};

impl Query for QueryRef {
    fn arity(&self) -> usize {
        (**self).arity()
    }
    fn eval(&self, db: &Instance) -> Result<Relation, EvalError> {
        (**self).eval(db)
    }
    fn is_monotone_syntactic(&self) -> bool {
        (**self).is_monotone_syntactic()
    }
    fn referenced_relations(&self) -> BTreeSet<RelName> {
        (**self).referenced_relations()
    }
    fn is_always_empty(&self) -> bool {
        (**self).is_always_empty()
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
}

/// The query that returns the empty `k`-ary relation on every input.
///
/// The canonical deletion query of an inflationary transducer.
#[derive(Clone, Debug)]
pub struct EmptyQuery {
    arity: usize,
}

impl EmptyQuery {
    /// An always-empty query of the given arity.
    pub fn new(arity: usize) -> Self {
        EmptyQuery { arity }
    }
}

impl Query for EmptyQuery {
    fn arity(&self) -> usize {
        self.arity
    }
    fn eval(&self, _db: &Instance) -> Result<Relation, EvalError> {
        Ok(Relation::empty(self.arity))
    }
    fn is_monotone_syntactic(&self) -> bool {
        true // constant functions are monotone
    }
    fn referenced_relations(&self) -> BTreeSet<RelName> {
        BTreeSet::new()
    }
    fn is_always_empty(&self) -> bool {
        true
    }
    fn describe(&self) -> String {
        format!("∅/{}", self.arity)
    }
}

/// The query that copies relation `R` verbatim.
#[derive(Clone, Debug)]
pub struct CopyQuery {
    rel: RelName,
    arity: usize,
}

impl CopyQuery {
    /// Copy `rel` (of the given arity).
    pub fn new(rel: impl Into<RelName>, arity: usize) -> Self {
        CopyQuery {
            rel: rel.into(),
            arity,
        }
    }
}

impl Query for CopyQuery {
    fn arity(&self) -> usize {
        self.arity
    }
    fn eval(&self, db: &Instance) -> Result<Relation, EvalError> {
        Ok(db.relation(&self.rel)?)
    }
    fn is_monotone_syntactic(&self) -> bool {
        true
    }
    fn referenced_relations(&self) -> BTreeSet<RelName> {
        [self.rel.clone()].into_iter().collect()
    }
    fn describe(&self) -> String {
        format!("copy {}", self.rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_relational::{fact, Schema};

    #[test]
    fn empty_query_is_empty_and_flagged() {
        let q = EmptyQuery::new(2);
        let db = Instance::empty(Schema::new());
        assert!(q.eval(&db).unwrap().is_empty());
        assert!(q.is_always_empty());
        assert!(q.is_monotone_syntactic());
        assert_eq!(q.arity(), 2);
        assert!(q.referenced_relations().is_empty());
    }

    #[test]
    fn copy_query_copies() {
        let sch = Schema::new().with("R", 1);
        let db = Instance::from_facts(sch, vec![fact!("R", 1)]).unwrap();
        let q = CopyQuery::new("R", 1);
        let out = q.eval(&db).unwrap();
        assert_eq!(out.len(), 1);
        assert!(q.is_monotone_syntactic());
        assert!(!q.is_always_empty());
        assert!(q.referenced_relations().contains(&"R".into()));
    }

    #[test]
    fn copy_query_unknown_relation_errors() {
        let db = Instance::empty(Schema::new());
        let q = CopyQuery::new("R", 1);
        assert!(q.eval(&db).is_err());
    }

    #[test]
    fn query_ref_delegates() {
        let q: QueryRef = Arc::new(EmptyQuery::new(0));
        assert_eq!(q.arity(), 0);
        assert!(q.is_always_empty());
        assert!(q.describe().contains('0'));
    }
}

//! Cross-evaluation incremental maintenance of stratified Datalog
//! (counting-based DRed).
//!
//! [`Program::eval`] re-derives every IDB fact from scratch. A
//! [`MaintainedFixpoint`] instead keeps the fixpoint **materialized
//! between evaluations** and advances it under a ± [`InstanceDelta`] on
//! the base facts:
//!
//! * every derived fact carries a **support count** (number of rule
//!   firings currently deriving it, plus 1 if it is seeded as a base
//!   fact) in a [`CountedRelation`];
//! * an elementary change Δ of one predicate updates counts through the
//!   classic mixed semi-naive expansion `Σᵢ new₁…newᵢ₋₁ Δᵢ oldᵢ₊₁…oldₙ`
//!   over each rule body, so each gained/lost firing is counted exactly
//!   once;
//! * **insertions** propagate monotonically: a fact whose count goes
//!   0 → positive is inserted and cascades;
//! * **deletions** in a stratum without internal recursion are exact by
//!   counting alone (support cannot be cyclic): a fact whose count hits
//!   0 is retracted and cascades. In a recursive stratum counting is
//!   not enough — a fact can keep a spuriously positive count through
//!   cyclic support — so the engine runs **DRed**: over-delete every
//!   fact that lost any derivation, then re-derive the over-deleted
//!   facts that still have support (computed by a backward join against
//!   the surviving database), cascading until a fixpoint;
//! * **negation** is handled stratum by stratum: lower-stratum ±
//!   changes are treated exactly like EDB deltas, and a stratum whose
//!   *negated* inputs changed is recomputed wholesale from its
//!   (maintained) inputs — only the affected stratum, never the whole
//!   program.
//!
//! The per-evaluation cost is `O(changed derivations)` instead of
//! `O(all derivations)`; strata whose inputs did not change are skipped
//! entirely. The Dedalus runtime puts this under its tick loop
//! (`FixpointMode::Incremental`), turning the per-tick deductive
//! fixpoint from the hottest loop in the system into a no-op on
//! quiescent ticks.

use crate::datalog::{Literal, Program, Rule};
use crate::error::EvalError;
use crate::frame::Frame;
use crate::plan::plan_order;
use crate::term::{Atom, Bindings};
use rtx_relational::{
    CountedRelation, Fact, Instance, InstanceDelta, RelName, Relation, Run, Tuple,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Per-head-tuple firing counts collected by a delta expansion.
type HeadCounts = BTreeMap<RelName, BTreeMap<Tuple, u64>>;

/// Pending per-predicate tuple batches (deterministic worklist).
type Worklist = BTreeMap<RelName, BTreeSet<Tuple>>;

/// A set-level ± change of one predicate.
#[derive(Clone, Debug, Default)]
struct Change {
    added: BTreeSet<Tuple>,
    removed: BTreeSet<Tuple>,
}

impl Change {
    fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Counters describing how the maintenance engine earned its keep.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FixpointStats {
    /// Deltas applied since initialization.
    pub deltas_applied: u64,
    /// Strata skipped because none of their inputs changed.
    pub strata_skipped: u64,
    /// Strata maintained incrementally (counting / DRed).
    pub strata_incremental: u64,
    /// Strata recomputed wholesale because a negated input changed.
    pub strata_rebuilt: u64,
    /// Derived facts retracted (including DRed over-deletions).
    pub facts_retracted: u64,
    /// Over-deleted facts put back by DRed re-derivation.
    pub facts_rederived: u64,
    /// Facts produced by rule firings per stratum (before the novelty
    /// check) in the most recent from-scratch evaluation — the work
    /// the fixpoint loop actually did. Filled by
    /// [`Program::eval_with_stats`] and
    /// [`MaintainedFixpoint::initialize`]; `apply` does not update it.
    pub stratum_considered: Vec<u64>,
    /// Novel facts added per stratum in the most recent from-scratch
    /// evaluation — the size of what was derived. The magic-sets
    /// rewrite exists to shrink this; `exp_magic` prints both sides.
    pub stratum_derived: Vec<u64>,
}

impl FixpointStats {
    /// Total facts considered (pre-dedup firings) across all strata of
    /// the last from-scratch evaluation.
    pub fn eval_considered(&self) -> u64 {
        self.stratum_considered.iter().sum()
    }

    /// Total novel facts derived across all strata of the last
    /// from-scratch evaluation.
    pub fn eval_derived(&self) -> u64 {
        self.stratum_derived.iter().sum()
    }

    /// Publish the change since `earlier` into the global
    /// [`rtx_obs`] registry under `fixpoint.*` counters. The
    /// maintenance engine calls this once per applied delta, so the
    /// registry stays a faithful running total of these cumulative
    /// stats without double counting.
    pub fn publish_delta(&self, earlier: &FixpointStats) {
        use rtx_obs::registry::add;
        add(
            "fixpoint.deltas_applied",
            self.deltas_applied.saturating_sub(earlier.deltas_applied),
        );
        add(
            "fixpoint.strata_skipped",
            self.strata_skipped.saturating_sub(earlier.strata_skipped),
        );
        add(
            "fixpoint.strata_incremental",
            self.strata_incremental
                .saturating_sub(earlier.strata_incremental),
        );
        add(
            "fixpoint.strata_rebuilt",
            self.strata_rebuilt.saturating_sub(earlier.strata_rebuilt),
        );
        add(
            "fixpoint.facts_retracted",
            self.facts_retracted.saturating_sub(earlier.facts_retracted),
        );
        add(
            "fixpoint.facts_rederived",
            self.facts_rederived.saturating_sub(earlier.facts_rederived),
        );
    }
}

/// Static shape of one stratum, computed once at construction.
struct StratumInfo {
    /// IDB predicates assigned to this stratum.
    preds: BTreeSet<RelName>,
    /// Indices into `program.rules()` whose head is in `preds`.
    rules: Vec<usize>,
    /// Does any rule of the stratum read a stratum predicate
    /// positively? (Conservative: treats intra-stratum acyclic
    /// dependencies as recursion, which only costs DRed generality.)
    recursive: bool,
    /// Predicates appearing negated in a stratum rule (all lower).
    negated: BTreeSet<RelName>,
    /// Non-stratum predicates read positively (EDB or lower IDB).
    reads: BTreeSet<RelName>,
    /// Predicates with ≥ 2 positive occurrences in a single rule body
    /// (their elementary steps need explicit pre/post versions).
    multi: BTreeSet<RelName>,
    /// The stratum's rules as a standalone program (rebuild path).
    sub: Program,
}

/// Pre/post versions of the pinned predicate for a mixed expansion.
/// `Unneeded` when the predicate occurs at most once per body.
enum PinnedVersions<'a> {
    Unneeded,
    Both {
        pre: &'a Relation,
        post: &'a Relation,
    },
}

/// A stratified-Datalog fixpoint maintained across evaluations under ±
/// deltas of its base facts (see the module docs for the algorithm).
pub struct MaintainedFixpoint {
    program: Program,
    strata: Vec<StratumInfo>,
    /// The base (seed) facts as last applied: EDB relations plus any
    /// exogenously seeded IDB facts.
    base: Instance,
    /// The materialized fixpoint: always equals `program.eval(&base)`.
    total: Instance,
    /// Support counts per IDB predicate.
    counts: BTreeMap<RelName, CountedRelation>,
    initialized: bool,
    stats: FixpointStats,
}

impl MaintainedFixpoint {
    /// Prepare a maintained fixpoint for a program. Fails when the
    /// program is not stratifiable.
    pub fn new(program: &Program) -> Result<Self, EvalError> {
        let strata_preds = program.stratify()?;
        let rules = program.rules();
        let mut strata = Vec::with_capacity(strata_preds.len());
        for preds in strata_preds {
            let idxs: Vec<usize> = rules
                .iter()
                .enumerate()
                .filter(|(_, r)| preds.contains(&r.head().pred))
                .map(|(i, _)| i)
                .collect();
            let mut recursive = false;
            let mut negated = BTreeSet::new();
            let mut reads = BTreeSet::new();
            let mut multi = BTreeSet::new();
            for &ri in &idxs {
                let mut occ: BTreeMap<&RelName, usize> = BTreeMap::new();
                for l in rules[ri].body() {
                    match l {
                        Literal::Pos(a) => {
                            *occ.entry(&a.pred).or_insert(0) += 1;
                            if preds.contains(&a.pred) {
                                recursive = true;
                            } else {
                                reads.insert(a.pred.clone());
                            }
                        }
                        Literal::Neg(a) => {
                            negated.insert(a.pred.clone());
                        }
                        Literal::Diseq(_, _) => {}
                    }
                }
                for (p, n) in occ {
                    if n >= 2 {
                        multi.insert(p.clone());
                    }
                }
            }
            let sub = Program::new(idxs.iter().map(|&i| rules[i].clone()).collect())?;
            strata.push(StratumInfo {
                preds,
                rules: idxs,
                recursive,
                negated,
                reads,
                multi,
                sub,
            });
        }
        Ok(MaintainedFixpoint {
            program: program.clone(),
            strata,
            base: Instance::empty(program.signature().clone()),
            total: Instance::empty(program.signature().clone()),
            initialized: false,
            counts: BTreeMap::new(),
            stats: FixpointStats::default(),
        })
    }

    /// Has [`MaintainedFixpoint::initialize`] run?
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Counters describing the maintenance work performed so far.
    pub fn stats(&self) -> &FixpointStats {
        &self.stats
    }

    /// The materialized fixpoint — always equal to
    /// `program.eval(&base)` for the current base.
    pub fn current(&self) -> &Instance {
        &self.total
    }

    /// (Re)compute the fixpoint from scratch over `base` and build the
    /// support counts. Must be called once before
    /// [`MaintainedFixpoint::apply`].
    pub fn initialize(&mut self, base: &Instance) -> Result<&Instance, EvalError> {
        let (total, eval_stats) = self.program.eval_with_stats(base)?;
        self.base = base.widen(total.schema().clone()).map_err(EvalError::Rel)?;
        self.counts.clear();
        for p in self.program.idb_predicates() {
            let arity = self
                .program
                .signature()
                .arity(p)
                .expect("IDB predicates are declared in the signature");
            self.counts.insert(p.clone(), CountedRelation::empty(arity));
        }
        self.total = total;
        recount_into(
            self.program.rules(),
            &self.total,
            &self.base,
            self.program.idb_predicates(),
            &mut self.counts,
        )?;
        self.initialized = true;
        // Maintenance counters restart; the per-stratum derivation
        // counters describe the evaluation that just ran.
        self.stats = eval_stats;
        Ok(&self.total)
    }

    /// Advance the maintained fixpoint by a ± delta on the base facts.
    ///
    /// After this returns, [`MaintainedFixpoint::current`] equals what
    /// `program.eval` would compute from scratch over the updated base
    /// — the equivalence the `incremental ≡ scratch` property suite
    /// pins down.
    pub fn apply(&mut self, delta: &InstanceDelta) -> Result<&Instance, EvalError> {
        if !self.initialized {
            return Err(EvalError::Other(
                "MaintainedFixpoint::apply before initialize".into(),
            ));
        }
        self.stats.deltas_applied += 1;
        let stats0 = rtx_obs::counting().then(|| self.stats.clone());
        let _apply_span = rtx_obs::trace::span("query", "dred.apply", &[]);
        if delta.is_empty() {
            self.stats.strata_skipped += self.strata.len() as u64;
            if let Some(earlier) = &stats0 {
                self.stats.publish_delta(earlier);
            }
            return Ok(&self.total);
        }
        let idb = self.program.idb_predicates().clone();
        // Set-filter the delta against the current base: only genuine
        // presence changes act. EDB changes commit to `total` up front
        // (strata reconstruct old versions as needed); IDB changes are
        // seed-support changes routed to the owning stratum.
        let mut changes: BTreeMap<RelName, Change> = BTreeMap::new();
        let mut seeds: BTreeMap<RelName, Change> = BTreeMap::new();
        for f in delta.removed() {
            if !self.base.remove_fact(f) {
                continue;
            }
            let slot = if idb.contains(f.rel()) {
                &mut seeds
            } else {
                self.total.remove_fact(f);
                &mut changes
            };
            slot.entry(f.rel().clone())
                .or_default()
                .removed
                .insert(f.tuple().clone());
        }
        for f in delta.added() {
            if self.base.contains_fact(f) {
                continue;
            }
            self.base.insert_fact(f.clone()).map_err(EvalError::Rel)?;
            if idb.contains(f.rel()) {
                seeds
                    .entry(f.rel().clone())
                    .or_default()
                    .added
                    .insert(f.tuple().clone());
            } else {
                self.total.insert_fact(f.clone()).map_err(EvalError::Rel)?;
                changes
                    .entry(f.rel().clone())
                    .or_default()
                    .added
                    .insert(f.tuple().clone());
            }
        }
        for si in 0..self.strata.len() {
            let info = &self.strata[si];
            let seed_changes: BTreeMap<RelName, Change> = info
                .preds
                .iter()
                .filter_map(|p| seeds.remove(p).map(|c| (p.clone(), c)))
                .filter(|(_, c)| !c.is_empty())
                .collect();
            let touched: Vec<RelName> = changes
                .iter()
                .filter(|(p, c)| {
                    !c.is_empty() && (info.reads.contains(*p) || info.negated.contains(*p))
                })
                .map(|(p, _)| p.clone())
                .collect();
            if touched.is_empty() && seed_changes.is_empty() {
                self.stats.strata_skipped += 1;
                rtx_obs::event!("query", "dred.skip", "stratum" => si);
                continue;
            }
            if touched.iter().any(|p| info.negated.contains(p)) {
                self.stats.strata_rebuilt += 1;
                rtx_obs::event!("query", "dred.rebuild", "stratum" => si);
                Self::rebuild_stratum(
                    &self.strata[si],
                    &self.base,
                    &mut self.total,
                    &mut self.counts,
                    &mut changes,
                )?;
                continue;
            }
            self.stats.strata_incremental += 1;
            let cascade0 = (self.stats.facts_retracted, self.stats.facts_rederived);
            let mut pass = StratumPass {
                program: &self.program,
                info: &self.strata[si],
                base: &self.base,
                total: &mut self.total,
                counts: &mut self.counts,
                stats: &mut self.stats,
                views: BTreeMap::new(),
                del_work: Worklist::new(),
                add_work: Worklist::new(),
                overdeleted: Worklist::new(),
                net: BTreeMap::new(),
            };
            pass.run(&changes, &seed_changes)?;
            let net = pass.net;
            if rtx_obs::tracing() {
                rtx_obs::event!(
                    "query",
                    "dred.cascade",
                    "stratum" => si,
                    "retracted" => self.stats.facts_retracted - cascade0.0,
                    "rederived" => self.stats.facts_rederived - cascade0.1,
                );
            }
            for (p, c) in net {
                let e = changes.entry(p).or_default();
                e.added.extend(c.added);
                e.removed.extend(c.removed);
            }
        }
        if let Some(earlier) = &stats0 {
            self.stats.publish_delta(earlier);
        }
        Ok(&self.total)
    }

    /// Recompute one stratum wholesale from its (already maintained)
    /// inputs — the fallback when a negated input changed. Only this
    /// stratum is touched; its net set-level change feeds higher strata.
    fn rebuild_stratum(
        info: &StratumInfo,
        base: &Instance,
        total: &mut Instance,
        counts: &mut BTreeMap<RelName, CountedRelation>,
        changes: &mut BTreeMap<RelName, Change>,
    ) -> Result<(), EvalError> {
        let mut old: BTreeMap<RelName, Relation> = BTreeMap::new();
        for p in &info.preds {
            let arity = total
                .schema()
                .arity(p)
                .ok_or_else(|| EvalError::Other(format!("stratum predicate `{p}` undeclared")))?;
            let rel = total
                .relation_ref(p)
                .cloned()
                .unwrap_or_else(|| Relation::empty(arity));
            total
                .set_relation(p.clone(), Relation::empty(arity))
                .map_err(EvalError::Rel)?;
            counts.insert(p.clone(), CountedRelation::empty(arity));
            old.insert(p.clone(), rel);
        }
        for f in base.facts() {
            if info.preds.contains(f.rel()) {
                total.insert_fact(f).map_err(EvalError::Rel)?;
            }
        }
        *total = info.sub.eval(total)?;
        recount_into(info.sub.rules(), total, base, &info.preds, counts)?;
        for (p, old_rel) in old {
            let arity = old_rel.arity();
            let empty = Relation::empty(arity);
            let new_rel = total.relation_ref(&p).unwrap_or(&empty);
            let d = new_rel.diff(&old_rel).map_err(EvalError::Rel)?;
            let (added, removed) = d.into_parts();
            if added.is_empty() && removed.is_empty() {
                continue;
            }
            let e = changes.entry(p).or_default();
            e.added.extend(added);
            e.removed.extend(removed);
        }
        Ok(())
    }
}

/// One incremental maintenance pass over a single stratum.
struct StratumPass<'a> {
    program: &'a Program,
    info: &'a StratumInfo,
    base: &'a Instance,
    total: &'a mut Instance,
    counts: &'a mut BTreeMap<RelName, CountedRelation>,
    stats: &'a mut FixpointStats,
    /// Sequential-state views of changed *input* predicates: start at
    /// their old value, converge to the (already committed) new value
    /// as elementary steps execute.
    views: BTreeMap<RelName, Relation>,
    del_work: Worklist,
    add_work: Worklist,
    /// DRed over-deleted facts awaiting re-derivation.
    overdeleted: Worklist,
    /// Net set-level change of the stratum's predicates.
    net: BTreeMap<RelName, Change>,
}

impl StratumPass<'_> {
    fn run(
        &mut self,
        changes: &BTreeMap<RelName, Change>,
        seed_changes: &BTreeMap<RelName, Change>,
    ) -> Result<(), EvalError> {
        // Sequential-state views for the changed inputs we read.
        let inputs: Vec<RelName> = changes
            .iter()
            .filter(|(p, c)| !c.is_empty() && self.info.reads.contains(*p))
            .map(|(p, _)| p.clone())
            .collect();
        for p in &inputs {
            let arity = self.total.schema().arity(p).ok_or_else(|| {
                EvalError::Other(format!("changed input predicate `{p}` undeclared"))
            })?;
            let mut old = self
                .total
                .relation_ref(p)
                .cloned()
                .unwrap_or_else(|| Relation::empty(arity));
            let c = &changes[p];
            for t in &c.added {
                old.remove(t);
            }
            for t in &c.removed {
                old.insert(t.clone()).map_err(EvalError::Rel)?;
            }
            self.views.insert(p.clone(), old);
        }

        // ---- deletion phase (seeds, then inputs, then cascades) ----
        for (p, c) in seed_changes {
            for t in &c.removed {
                self.lose_seed(p, t)?;
            }
        }
        for p in &inputs {
            let removed = &changes[p].removed;
            if removed.is_empty() {
                continue;
            }
            let heads = self.input_step(p, removed, StepDir::Remove)?;
            self.handle_lost(heads)?;
        }
        while let Some((p, ts)) = pop_first(&mut self.del_work) {
            let heads = self.stratum_step(&p, &ts, StepDir::Remove)?;
            self.handle_lost(heads)?;
        }

        // ---- DRed re-derivation (recursive strata only) ----
        self.rederive()?;

        // ---- insertion phase (inputs, seeds, then cascades) ----
        for p in &inputs {
            let added = &changes[p].added;
            if added.is_empty() {
                continue;
            }
            let heads = self.input_step(p, added, StepDir::Add)?;
            self.handle_gained(heads)?;
        }
        for (p, c) in seed_changes {
            for t in &c.added {
                self.gain_seed(p, t)?;
            }
        }
        while let Some((p, ts)) = pop_first(&mut self.add_work) {
            let heads = self.stratum_step(&p, &ts, StepDir::Add)?;
            self.handle_gained(heads)?;
        }
        self.views.clear();
        Ok(())
    }

    /// Execute one elementary step of a changed *input* predicate: run
    /// the mixed expansion against the sequential views, then commit
    /// the step to the view.
    fn input_step(
        &mut self,
        p: &RelName,
        tuples: &BTreeSet<Tuple>,
        dir: StepDir,
    ) -> Result<HeadCounts, EvalError> {
        let mut cur = self
            .views
            .remove(p)
            .ok_or_else(|| EvalError::Other(format!("no view for changed input `{p}`")))?;
        let pre_copy = self.info.multi.contains(p).then(|| cur.clone());
        let delta_rel =
            Relation::from_tuples(cur.arity(), tuples.iter().cloned()).map_err(EvalError::Rel)?;
        // Advance the view to the post-step state before the expansion:
        // `cur` plays "post", the copy plays "pre".
        match dir {
            StepDir::Remove => {
                for t in tuples {
                    cur.remove(t);
                }
            }
            StepDir::Add => {
                for t in tuples {
                    cur.insert(t.clone()).map_err(EvalError::Rel)?;
                }
            }
        }
        // `pre_copy` was taken before the mutation, so it is the
        // pre-step state in both directions; `cur` is the post state.
        let versions = match &pre_copy {
            Some(pre) => PinnedVersions::Both { pre, post: &cur },
            None => PinnedVersions::Unneeded,
        };
        let mut heads = HeadCounts::new();
        expansion(
            self.program,
            self.info,
            p,
            &delta_rel,
            &versions,
            &self.views,
            self.total,
            &mut heads,
        )?;
        self.views.insert(p.clone(), cur);
        Ok(heads)
    }

    /// Execute one elementary step of a *stratum* predicate (cascade),
    /// committing the step to `total` after the expansion.
    fn stratum_step(
        &mut self,
        p: &RelName,
        tuples: &BTreeSet<Tuple>,
        dir: StepDir,
    ) -> Result<HeadCounts, EvalError> {
        let arity = self
            .total
            .schema()
            .arity(p)
            .ok_or_else(|| EvalError::Other(format!("stratum predicate `{p}` undeclared")))?;
        let delta_rel =
            Relation::from_tuples(arity, tuples.iter().cloned()).map_err(EvalError::Rel)?;
        let empty = Relation::empty(arity);
        let cur = self.total.relation_ref(p).unwrap_or(&empty);
        // `cur` is the pre-step state (removals are still present,
        // additions not yet inserted).
        let post_copy = self.info.multi.contains(p).then(|| {
            let mut c = cur.clone();
            match dir {
                StepDir::Remove => {
                    for t in tuples {
                        c.remove(t);
                    }
                }
                StepDir::Add => {
                    for t in tuples {
                        c.insert(t.clone()).expect("tuple arity matches relation");
                    }
                }
            }
            c
        });
        let versions = match &post_copy {
            Some(post) => PinnedVersions::Both { pre: cur, post },
            None => PinnedVersions::Unneeded,
        };
        let mut heads = HeadCounts::new();
        expansion(
            self.program,
            self.info,
            p,
            &delta_rel,
            &versions,
            &self.views,
            self.total,
            &mut heads,
        )?;
        // Commit the step.
        match post_copy {
            Some(post) => self
                .total
                .set_relation(p.clone(), post)
                .map_err(EvalError::Rel)?,
            None => match dir {
                StepDir::Remove => {
                    for t in tuples {
                        self.total.remove_fact(&Fact::new(p.clone(), t.clone()));
                    }
                }
                StepDir::Add => {
                    for t in tuples {
                        self.total
                            .insert_fact(Fact::new(p.clone(), t.clone()))
                            .map_err(EvalError::Rel)?;
                    }
                }
            },
        }
        Ok(heads)
    }

    /// A stratum fact lost its seed support.
    fn lose_seed(&mut self, p: &RelName, t: &Tuple) -> Result<(), EvalError> {
        if self.info.recursive {
            self.overdelete(p, t)?;
        } else {
            let c = count_table(self.counts, p)?;
            if c.sub(t, 1).map_err(EvalError::Rel)? {
                self.retract(p, t);
            }
        }
        Ok(())
    }

    /// A stratum fact gained seed support.
    fn gain_seed(&mut self, p: &RelName, t: &Tuple) -> Result<(), EvalError> {
        let c = count_table(self.counts, p)?;
        if c.add(t.clone(), 1).map_err(EvalError::Rel)? {
            self.add_work
                .entry(p.clone())
                .or_default()
                .insert(t.clone());
            net_add(&mut self.net, p, t);
        }
        Ok(())
    }

    /// Process the lost firings of one elementary removal step.
    fn handle_lost(&mut self, heads: HeadCounts) -> Result<(), EvalError> {
        for (p, tuples) in heads {
            for (t, lost) in tuples {
                if self.info.recursive {
                    self.overdelete(&p, &t)?;
                } else {
                    let c = count_table(self.counts, &p)?;
                    if c.sub(&t, lost).map_err(EvalError::Rel)? {
                        self.retract(&p, &t);
                    }
                }
            }
        }
        Ok(())
    }

    /// Process the gained firings of one elementary addition step.
    fn handle_gained(&mut self, heads: HeadCounts) -> Result<(), EvalError> {
        for (p, tuples) in heads {
            for (t, gained) in tuples {
                let c = count_table(self.counts, &p)?;
                if c.add(t.clone(), gained).map_err(EvalError::Rel)? {
                    self.add_work
                        .entry(p.clone())
                        .or_default()
                        .insert(t.clone());
                    net_add(&mut self.net, &p, &t);
                }
            }
        }
        Ok(())
    }

    /// DRed over-deletion: a recursive-stratum fact that lost *any*
    /// derivation is retracted outright; re-derivation puts survivors
    /// back.
    fn overdelete(&mut self, p: &RelName, t: &Tuple) -> Result<(), EvalError> {
        let d = self.overdeleted.entry(p.clone()).or_default();
        if !d.insert(t.clone()) {
            return Ok(()); // already over-deleted this pass
        }
        count_table(self.counts, p)?.clear_tuple(t);
        self.retract(p, t);
        Ok(())
    }

    /// Record a retraction: enqueue the cascade batch and track the net
    /// change. (The `total` commit happens when the batch pops.)
    fn retract(&mut self, p: &RelName, t: &Tuple) {
        self.del_work
            .entry(p.clone())
            .or_default()
            .insert(t.clone());
        net_remove(&mut self.net, p, t);
        self.stats.facts_retracted += 1;
    }

    /// DRed re-derivation: repeatedly scan the over-deleted facts for
    /// ones still derivable from the surviving database (seed support
    /// plus a backward join), re-insert them with their exact recounted
    /// support, and propagate the gained firings — until a pass makes
    /// no progress. Whatever remains over-deleted is gone for good.
    fn rederive(&mut self) -> Result<(), EvalError> {
        if self.overdeleted.values().all(BTreeSet::is_empty) {
            return Ok(());
        }
        loop {
            let mut progress = false;
            let snapshot: Vec<(RelName, Vec<Tuple>)> = self
                .overdeleted
                .iter()
                .map(|(p, ts)| (p.clone(), ts.iter().cloned().collect()))
                .collect();
            for (p, ts) in snapshot {
                for t in ts {
                    let mut c =
                        u64::from(self.base.contains_fact(&Fact::new(p.clone(), t.clone())));
                    c += self.backward_count(&p, &t)?;
                    if c == 0 {
                        continue;
                    }
                    self.overdeleted
                        .get_mut(&p)
                        .expect("snapshot key present")
                        .remove(&t);
                    count_table(self.counts, &p)?
                        .add(t.clone(), c)
                        .map_err(EvalError::Rel)?;
                    self.total
                        .insert_fact(Fact::new(p.clone(), t.clone()))
                        .map_err(EvalError::Rel)?;
                    net_add(&mut self.net, &p, &t);
                    self.stats.facts_rederived += 1;
                    self.propagate_rederived(&p, &t)?;
                    progress = true;
                }
            }
            if !progress {
                return Ok(());
            }
        }
    }

    /// Count the firings deriving `(p, t)` over the current database by
    /// unifying each rule head with `t` and joining the body forward.
    fn backward_count(&self, p: &RelName, t: &Tuple) -> Result<u64, EvalError> {
        let mut n = 0u64;
        for &ri in &self.info.rules {
            let rule = &self.program.rules()[ri];
            if rule.head().pred != *p {
                continue;
            }
            let Some(env0) = rule.head().match_tuple(t, &Bindings::new()) else {
                continue;
            };
            let atoms = positive_atoms(rule);
            let mut envs = vec![env0];
            if !atoms.is_empty() {
                let mut srcs: Vec<&Relation> = Vec::with_capacity(atoms.len());
                let mut dead = false;
                for a in &atoms {
                    match self.source(&a.pred) {
                        Some(r) if !r.is_empty() => srcs.push(r),
                        _ => {
                            dead = true;
                            break;
                        }
                    }
                }
                if dead {
                    continue;
                }
                for &k in &plan_order(&atoms, None) {
                    envs = atoms[k].join_indexed(srcs[k], &envs);
                    if envs.is_empty() {
                        break;
                    }
                }
            }
            for env in &envs {
                if passes_filters(rule, env, self.total)? {
                    n += 1;
                }
            }
        }
        Ok(n)
    }

    /// Propagate the firings gained by re-inserting `(p, t)`: pinned
    /// expansion with Δ = {t}. Heads still over-deleted are skipped —
    /// their own backward recount (which now sees `t`) will include
    /// these firings.
    fn propagate_rederived(&mut self, p: &RelName, t: &Tuple) -> Result<(), EvalError> {
        let arity = t.arity();
        let delta_rel = Relation::from_tuples(arity, [t.clone()]).map_err(EvalError::Rel)?;
        let empty = Relation::empty(arity);
        let cur = self.total.relation_ref(p).unwrap_or(&empty);
        // `t` is already committed: `cur` is the post-step state.
        let pre_copy = self.info.multi.contains(p).then(|| {
            let mut c = cur.clone();
            c.remove(t);
            c
        });
        let versions = match &pre_copy {
            Some(pre) => PinnedVersions::Both { pre, post: cur },
            None => PinnedVersions::Unneeded,
        };
        let mut heads = HeadCounts::new();
        expansion(
            self.program,
            self.info,
            p,
            &delta_rel,
            &versions,
            &self.views,
            self.total,
            &mut heads,
        )?;
        for (hp, tuples) in heads {
            for (ht, k) in tuples {
                if self.overdeleted.get(&hp).is_some_and(|d| d.contains(&ht)) {
                    continue;
                }
                let c = count_table(self.counts, &hp)?;
                if c.add(ht, k).map_err(EvalError::Rel)? {
                    return Err(EvalError::Other(
                        "DRed re-derivation produced a fact absent from the pre-deletion database"
                            .into(),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Source relation for a predicate: the sequential view when the
    /// predicate changed this pass, else the materialized database.
    fn source(&self, p: &RelName) -> Option<&Relation> {
        match self.views.get(p) {
            Some(v) => Some(v),
            None => self.total.relation_ref(p),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum StepDir {
    Remove,
    Add,
}

fn pop_first(work: &mut Worklist) -> Option<(RelName, BTreeSet<Tuple>)> {
    let p = work.keys().next()?.clone();
    let ts = work.remove(&p)?;
    if ts.is_empty() {
        return pop_first(work);
    }
    Some((p, ts))
}

fn count_table<'a>(
    counts: &'a mut BTreeMap<RelName, CountedRelation>,
    p: &RelName,
) -> Result<&'a mut CountedRelation, EvalError> {
    counts
        .get_mut(p)
        .ok_or_else(|| EvalError::Other(format!("no count table for IDB `{p}`")))
}

fn net_add(net: &mut BTreeMap<RelName, Change>, p: &RelName, t: &Tuple) {
    let c = net.entry(p.clone()).or_default();
    if !c.removed.remove(t) {
        c.added.insert(t.clone());
    }
}

fn net_remove(net: &mut BTreeMap<RelName, Change>, p: &RelName, t: &Tuple) {
    let c = net.entry(p.clone()).or_default();
    if !c.added.remove(t) {
        c.removed.insert(t.clone());
    }
}

fn positive_atoms(rule: &Rule) -> Vec<&Atom> {
    rule.body()
        .iter()
        .filter_map(|l| match l {
            Literal::Pos(a) => Some(a),
            _ => None,
        })
        .collect()
}

/// Check a complete binding against the rule's negated atoms and
/// nonequalities (mirrors the filters of `Rule::derive`).
fn passes_filters(rule: &Rule, env: &Bindings, neg_db: &Instance) -> Result<bool, EvalError> {
    for l in rule.body() {
        match l {
            Literal::Pos(_) => {}
            Literal::Neg(a) => {
                let t = a.instantiate(env).ok_or_else(|| EvalError::Unsafe {
                    reason: format!("negated atom {a} unbound"),
                })?;
                if neg_db.relation_ref(&a.pred).is_some_and(|r| r.contains(&t)) {
                    return Ok(false);
                }
            }
            Literal::Diseq(x, y) => match (x.resolve(env), y.resolve(env)) {
                (Some(a), Some(b)) if a != b => {}
                (Some(_), Some(_)) => return Ok(false),
                _ => {
                    return Err(EvalError::Unsafe {
                        reason: "nonequality over unbound variable".into(),
                    })
                }
            },
        }
    }
    Ok(true)
}

/// Accumulate the head-tuple counts of the surviving bindings.
fn collect_heads(
    rule: &Rule,
    envs: &[Bindings],
    neg_db: &Instance,
    out: &mut HeadCounts,
) -> Result<(), EvalError> {
    for env in envs {
        if !passes_filters(rule, env, neg_db)? {
            continue;
        }
        let t = rule
            .head()
            .instantiate(env)
            .ok_or_else(|| EvalError::Unsafe {
                reason: "head unbound".into(),
            })?;
        *out.entry(rule.head().pred.clone())
            .or_default()
            .entry(t)
            .or_insert(0) += 1;
    }
    Ok(())
}

/// Build support counts from scratch for the heads of `rules` over
/// `db`: every rule firing plus +1 seed support per base fact of
/// `preds`. The single source of truth for both initialization and
/// negation-triggered stratum rebuilds — the two paths must count
/// identically or the bookkeeping drifts into `NegativeSupport`.
fn recount_into(
    rules: &[Rule],
    db: &Instance,
    base: &Instance,
    preds: &BTreeSet<RelName>,
    counts: &mut BTreeMap<RelName, CountedRelation>,
) -> Result<(), EvalError> {
    let mut heads = HeadCounts::new();
    for r in rules {
        count_rule_firings(r, db, &mut heads)?;
    }
    for (p, tuples) in heads {
        let c = count_table(counts, &p)?;
        for (t, k) in tuples {
            c.add(t, k).map_err(EvalError::Rel)?;
        }
    }
    for f in base.facts() {
        if preds.contains(f.rel()) {
            count_table(counts, f.rel())?
                .add(f.tuple().clone(), 1)
                .map_err(EvalError::Rel)?;
        }
    }
    Ok(())
}

/// Count every firing of `rule` over `db` (initialization / rebuild).
fn count_rule_firings(rule: &Rule, db: &Instance, out: &mut HeadCounts) -> Result<(), EvalError> {
    let atoms = positive_atoms(rule);
    let mut envs = vec![Bindings::new()];
    if !atoms.is_empty() {
        let mut srcs: Vec<&Relation> = Vec::with_capacity(atoms.len());
        for a in &atoms {
            match db.relation_ref(&a.pred) {
                Some(r) if !r.is_empty() => srcs.push(r),
                _ => return Ok(()), // some body relation is empty
            }
        }
        if frame_count(rule, &atoms, &srcs, None, db, out)? {
            return Ok(());
        }
        for &k in &plan_order(&atoms, None) {
            envs = atoms[k].join_indexed(srcs[k], &envs);
            if envs.is_empty() {
                return Ok(());
            }
        }
    }
    collect_heads(rule, &envs, db, out)
}

/// Columnar fast path shared by [`expansion`] and
/// [`count_rule_firings`]: join the positive atoms directly over their
/// sorted runs with the [`Frame`] executor (probing run ranges, never
/// materializing a `Tuple` or `Bindings` per candidate), apply the
/// rule's negation / nonequality filters column-wise, and count the
/// surviving firings per head tuple. Returns `Ok(false)` when any
/// source (or negated relation) is not columnar — the caller falls
/// back to the generic `Bindings` path, which is exactly what the
/// `RTX_STORAGE=btree` oracle forces.
fn frame_count(
    rule: &Rule,
    atoms: &[&Atom],
    srcs: &[&Relation],
    pinned: Option<usize>,
    neg_db: &Instance,
    out: &mut HeadCounts,
) -> Result<bool, EvalError> {
    let mut runs: Vec<Arc<Run>> = Vec::with_capacity(srcs.len());
    for r in srcs {
        match r.columnar_run() {
            Some(run) => runs.push(run),
            None => return Ok(false),
        }
    }
    // Negated relations must be columnar too (a missing one filters
    // nothing, modeled as an empty run so unbound-variable errors stay
    // identical to the generic path).
    let mut negs: Vec<(&Atom, Arc<Run>)> = Vec::new();
    for l in rule.body() {
        if let Literal::Neg(a) = l {
            match neg_db.relation_ref(&a.pred) {
                None => negs.push((a, Arc::new(Run::empty(a.terms.len())))),
                Some(rel) => match rel.columnar_run() {
                    Some(run) => negs.push((a, run)),
                    None => return Ok(false),
                },
            }
        }
    }
    let mut frame = Frame::unit();
    for &k in &plan_order(atoms, pinned) {
        frame = frame.join_atom(atoms[k], &runs[k], true);
        if frame.is_empty() {
            return Ok(true);
        }
    }
    for l in rule.body() {
        if let Literal::Diseq(x, y) = l {
            frame.retain_diseq(x, y)?;
        }
    }
    for (a, run) in &negs {
        frame.retain_not_in(a, run)?;
    }
    if frame.is_empty() {
        return Ok(true);
    }
    let head = rule.head();
    let slot = out.entry(head.pred.clone()).or_default();
    for (t, k) in frame.project_counts(&head.terms)? {
        *slot.entry(t).or_insert(0) += k;
    }
    Ok(true)
}

/// The mixed semi-naive expansion for one elementary step of predicate
/// `pinned`: for every rule of the stratum and every occurrence `i` of
/// `pinned` in its body, join `new₁ … newᵢ₋₁ Δᵢ oldᵢ₊₁ … oldₙ` (other
/// predicates at their current sequential state) and count the
/// resulting firings per head tuple. Each gained/lost firing of the
/// step is counted exactly once.
#[allow(clippy::too_many_arguments)]
fn expansion(
    program: &Program,
    info: &StratumInfo,
    pinned: &RelName,
    delta_rel: &Relation,
    versions: &PinnedVersions<'_>,
    views: &BTreeMap<RelName, Relation>,
    total: &Instance,
    out: &mut HeadCounts,
) -> Result<(), EvalError> {
    if delta_rel.is_empty() {
        return Ok(());
    }
    for &ri in &info.rules {
        let rule = &program.rules()[ri];
        let atoms = positive_atoms(rule);
        let occs: Vec<usize> = atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.pred == *pinned)
            .map(|(i, _)| i)
            .collect();
        if occs.is_empty() {
            continue;
        }
        for &i in &occs {
            let mut srcs: Vec<&Relation> = Vec::with_capacity(atoms.len());
            let mut dead = false;
            for (j, a) in atoms.iter().enumerate() {
                let r: &Relation = if j == i {
                    delta_rel
                } else if a.pred == *pinned {
                    match versions {
                        PinnedVersions::Both { pre, post } => {
                            if j < i {
                                post
                            } else {
                                pre
                            }
                        }
                        PinnedVersions::Unneeded => {
                            return Err(EvalError::Other(format!(
                                "expansion of `{pinned}` needs pre/post versions"
                            )))
                        }
                    }
                } else if let Some(v) = views.get(&a.pred) {
                    v
                } else {
                    match total.relation_ref(&a.pred) {
                        Some(r) => r,
                        None => {
                            dead = true;
                            break;
                        }
                    }
                };
                if r.is_empty() {
                    dead = true;
                    break;
                }
                srcs.push(r);
            }
            if dead {
                continue;
            }
            if frame_count(rule, &atoms, &srcs, Some(i), total, out)? {
                continue;
            }
            let mut envs = vec![Bindings::new()];
            for &k in &plan_order(&atoms, Some(i)) {
                envs = atoms[k].join_indexed(srcs[k], &envs);
                if envs.is_empty() {
                    break;
                }
            }
            if envs.is_empty() {
                continue;
            }
            collect_heads(rule, &envs, total, out)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom;
    use rtx_relational::{fact, Schema};

    fn rule(head: Atom, body: Vec<Literal>) -> Rule {
        Rule::new(head, body).unwrap()
    }

    fn tc_program() -> Program {
        Program::new(vec![
            rule(
                atom!("T"; @"X", @"Y"),
                vec![Literal::Pos(atom!("E"; @"X", @"Y"))],
            ),
            rule(
                atom!("T"; @"X", @"Z"),
                vec![
                    Literal::Pos(atom!("T"; @"X", @"Y")),
                    Literal::Pos(atom!("E"; @"Y", @"Z")),
                ],
            ),
        ])
        .unwrap()
    }

    /// Apply a delta to both the maintained fixpoint and a shadow base,
    /// and assert the maintained result equals a scratch evaluation.
    fn check_step(
        fix: &mut MaintainedFixpoint,
        base: &mut Instance,
        added: Vec<Fact>,
        removed: Vec<Fact>,
    ) {
        let delta = InstanceDelta::from_parts(added, removed);
        base.apply_delta(&delta).unwrap();
        let maintained = fix.apply(&delta).unwrap().clone();
        let scratch = fix.program.eval(base).unwrap();
        assert_eq!(maintained, scratch, "incremental drifted from scratch");
    }

    fn edge_base(pairs: &[(i64, i64)]) -> Instance {
        let sch = Schema::new().with("E", 2).with("T", 2);
        let mut i = Instance::empty(sch);
        for &(a, b) in pairs {
            i.insert_fact(fact!("E", a, b)).unwrap();
        }
        i
    }

    #[test]
    fn insertions_cascade_through_recursion() {
        let p = tc_program();
        let mut fix = MaintainedFixpoint::new(&p).unwrap();
        let mut base = edge_base(&[(1, 2)]);
        fix.initialize(&base).unwrap();
        check_step(&mut fix, &mut base, vec![fact!("E", 2, 3)], vec![]);
        check_step(&mut fix, &mut base, vec![fact!("E", 3, 4)], vec![]);
        assert!(fix.current().contains_fact(&fact!("T", 1, 4)));
        assert_eq!(fix.stats().strata_rebuilt, 0);
    }

    #[test]
    fn empty_delta_skips_every_stratum() {
        let p = tc_program();
        let mut fix = MaintainedFixpoint::new(&p).unwrap();
        let mut base = edge_base(&[(1, 2), (2, 3)]);
        fix.initialize(&base).unwrap();
        check_step(&mut fix, &mut base, vec![], vec![]);
        assert_eq!(fix.stats().strata_skipped, 1);
        assert_eq!(fix.stats().strata_incremental, 0);
    }

    #[test]
    fn dred_kills_cyclically_supported_facts() {
        // 1→2→1: every T pair is (cyclically) multi-supported. Removing
        // E(2,1) must shrink T to {(1,2)} — pure counting would leave
        // the cycle's facts alive on their spurious mutual support.
        let p = tc_program();
        let mut fix = MaintainedFixpoint::new(&p).unwrap();
        let mut base = edge_base(&[(1, 2), (2, 1)]);
        fix.initialize(&base).unwrap();
        assert_eq!(fix.current().relation(&"T".into()).unwrap().len(), 4);
        check_step(&mut fix, &mut base, vec![], vec![fact!("E", 2, 1)]);
        let t = fix.current().relation(&"T".into()).unwrap();
        assert_eq!(t.len(), 1);
        assert!(fix.stats().facts_retracted >= 3);
    }

    #[test]
    fn dred_rederives_alternately_supported_facts() {
        // Chain 1→2→3→4 plus shortcut 1→3. Removing E(1,2) over-deletes
        // T(1,3)/T(1,4) (they lose their chain derivations) but both
        // must be re-derived through the shortcut.
        let p = tc_program();
        let mut fix = MaintainedFixpoint::new(&p).unwrap();
        let mut base = edge_base(&[(1, 2), (2, 3), (3, 4), (1, 3)]);
        fix.initialize(&base).unwrap();
        check_step(&mut fix, &mut base, vec![], vec![fact!("E", 1, 2)]);
        assert!(fix.current().contains_fact(&fact!("T", 1, 3)));
        assert!(fix.current().contains_fact(&fact!("T", 1, 4)));
        assert!(!fix.current().contains_fact(&fact!("T", 1, 2)));
        assert!(fix.stats().facts_rederived >= 2, "{:?}", fix.stats());
    }

    #[test]
    fn mixed_deltas_on_random_walk_match_scratch() {
        let p = tc_program();
        let mut fix = MaintainedFixpoint::new(&p).unwrap();
        let mut base = edge_base(&[]);
        fix.initialize(&base).unwrap();
        // A fixed ± schedule exercising growth, cycles, and teardown.
        type Step = (Vec<(i64, i64)>, Vec<(i64, i64)>);
        let steps: Vec<Step> = vec![
            (vec![(1, 2), (2, 3)], vec![]),
            (vec![(3, 1)], vec![]),
            (vec![(3, 4), (4, 5)], vec![(2, 3)]),
            (vec![(2, 3)], vec![(3, 1)]),
            (vec![], vec![(1, 2), (3, 4)]),
            (vec![(5, 1)], vec![(4, 5)]),
            (vec![], vec![(2, 3), (5, 1)]),
        ];
        for (add, rem) in steps {
            check_step(
                &mut fix,
                &mut base,
                add.iter().map(|&(a, b)| fact!("E", a, b)).collect(),
                rem.iter().map(|&(a, b)| fact!("E", a, b)).collect(),
            );
        }
    }

    #[test]
    fn negated_input_changes_rebuild_only_that_stratum() {
        // Reach in stratum 0; Unreach = Node ∧ ¬Reach in stratum 1.
        let p = Program::new(vec![
            rule(atom!("Reach"; @"X"), vec![Literal::Pos(atom!("Src"; @"X"))]),
            rule(
                atom!("Reach"; @"Y"),
                vec![
                    Literal::Pos(atom!("Reach"; @"X")),
                    Literal::Pos(atom!("E"; @"X", @"Y")),
                ],
            ),
            rule(
                atom!("Unreach"; @"X"),
                vec![
                    Literal::Pos(atom!("Node"; @"X")),
                    Literal::Neg(atom!("Reach"; @"X")),
                ],
            ),
        ])
        .unwrap();
        let sch = Schema::new()
            .with("E", 2)
            .with("Src", 1)
            .with("Node", 1)
            .with("Reach", 1)
            .with("Unreach", 1);
        let mut base = Instance::from_facts(
            sch,
            vec![
                fact!("E", 1, 2),
                fact!("Src", 1),
                fact!("Node", 1),
                fact!("Node", 2),
                fact!("Node", 3),
            ],
        )
        .unwrap();
        let mut fix = MaintainedFixpoint::new(&p).unwrap();
        fix.initialize(&base).unwrap();
        assert!(fix.current().contains_fact(&fact!("Unreach", 3)));
        // Extending reachability changes the negated input of stratum 1.
        check_step(&mut fix, &mut base, vec![fact!("E", 2, 3)], vec![]);
        assert!(!fix.current().contains_fact(&fact!("Unreach", 3)));
        assert!(fix.stats().strata_rebuilt >= 1);
        // Retracting the edge flips it back.
        check_step(&mut fix, &mut base, vec![], vec![fact!("E", 2, 3)]);
        assert!(fix.current().contains_fact(&fact!("Unreach", 3)));
        // A Node-only change leaves stratum 0 untouched (skipped).
        let skipped_before = fix.stats().strata_skipped;
        check_step(&mut fix, &mut base, vec![fact!("Node", 4)], vec![]);
        assert!(fix.stats().strata_skipped > skipped_before);
    }

    #[test]
    fn idb_seed_changes_adjust_support() {
        // A seeded T fact must survive losing its derivations, and a
        // derived T fact must survive losing its seed.
        let p = tc_program();
        let mut fix = MaintainedFixpoint::new(&p).unwrap();
        let mut base = edge_base(&[(1, 2)]);
        base.insert_fact(fact!("T", 7, 8)).unwrap();
        fix.initialize(&base).unwrap();
        assert!(fix.current().contains_fact(&fact!("T", 7, 8)));
        // Seed the derived fact, then retract the edge: T(1,2) stays.
        check_step(&mut fix, &mut base, vec![fact!("T", 1, 2)], vec![]);
        check_step(&mut fix, &mut base, vec![], vec![fact!("E", 1, 2)]);
        assert!(fix.current().contains_fact(&fact!("T", 1, 2)));
        // Retract the seed too: now it is gone.
        check_step(&mut fix, &mut base, vec![], vec![fact!("T", 1, 2)]);
        assert!(!fix.current().contains_fact(&fact!("T", 1, 2)));
        // The exogenous seed is independent of any rule support.
        check_step(&mut fix, &mut base, vec![], vec![fact!("T", 7, 8)]);
        assert!(!fix.current().contains_fact(&fact!("T", 7, 8)));
    }

    #[test]
    fn repeated_predicate_occurrences_use_pre_post_versions() {
        // H(X,Z) ← E(X,Y), E(Y,Z): the same predicate twice in one body
        // exercises the mixed pre/post expansion.
        let p = Program::new(vec![rule(
            atom!("H"; @"X", @"Z"),
            vec![
                Literal::Pos(atom!("E"; @"X", @"Y")),
                Literal::Pos(atom!("E"; @"Y", @"Z")),
            ],
        )])
        .unwrap();
        let sch = Schema::new().with("E", 2).with("H", 2);
        let mut base = Instance::empty(sch);
        for &(a, b) in &[(1i64, 2i64), (2, 3), (2, 4)] {
            base.insert_fact(fact!("E", a, b)).unwrap();
        }
        let mut fix = MaintainedFixpoint::new(&p).unwrap();
        fix.initialize(&base).unwrap();
        // A batch that adds two chainable edges at once: the firing
        // using both must be counted exactly once.
        check_step(
            &mut fix,
            &mut base,
            vec![fact!("E", 4, 5), fact!("E", 5, 6)],
            vec![],
        );
        assert!(fix.current().contains_fact(&fact!("H", 4, 6)));
        check_step(
            &mut fix,
            &mut base,
            vec![],
            vec![fact!("E", 2, 3), fact!("E", 4, 5)],
        );
        check_step(&mut fix, &mut base, vec![], vec![fact!("E", 1, 2)]);
        assert!(fix.current().relation(&"H".into()).unwrap().is_empty() == base_h_empty(&base, &p));
    }

    fn base_h_empty(base: &Instance, p: &Program) -> bool {
        p.eval(base)
            .unwrap()
            .relation(&"H".into())
            .unwrap()
            .is_empty()
    }

    #[test]
    fn apply_before_initialize_is_an_error() {
        let p = tc_program();
        let mut fix = MaintainedFixpoint::new(&p).unwrap();
        assert!(!fix.is_initialized());
        let d = InstanceDelta::from_parts(vec![fact!("E", 1, 2)], vec![]);
        assert!(matches!(fix.apply(&d), Err(EvalError::Other(_))));
    }

    #[test]
    fn non_stratifiable_programs_rejected() {
        let p = Program::new(vec![
            rule(
                atom!("P"; @"X"),
                vec![
                    Literal::Pos(atom!("S"; @"X")),
                    Literal::Neg(atom!("Q"; @"X")),
                ],
            ),
            rule(
                atom!("Q"; @"X"),
                vec![
                    Literal::Pos(atom!("S"; @"X")),
                    Literal::Neg(atom!("P"; @"X")),
                ],
            ),
        ])
        .unwrap();
        assert!(MaintainedFixpoint::new(&p).is_err());
    }
}

//! Native (Rust-implemented) queries — the "computationally complete"
//! local language of the paper's abstract transducers.
//!
//! Theorem 6(1)/(2) and Corollary 14(1) quantify over a computationally
//! complete query language `L`. We model such an `L` by arbitrary Rust
//! functions `Instance → Relation`. Properties that are syntactic for the
//! declarative languages (monotonicity, referenced relations) are
//! *declared* by the constructor here, and can be spot-checked by the
//! empirical analyses in `rtx-calm`.

use crate::error::EvalError;
use crate::query::Query;
use rtx_relational::{Instance, RelName, Relation};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

type NativeFn = dyn Fn(&Instance) -> Result<Relation, EvalError> + Send + Sync;

/// A query given by a native Rust function.
#[derive(Clone)]
pub struct NativeQuery {
    name: String,
    arity: usize,
    f: Arc<NativeFn>,
    monotone: bool,
    refs: BTreeSet<RelName>,
}

impl NativeQuery {
    /// Build a native query.
    ///
    /// * `refs` must list every relation the function may read — the
    ///   obliviousness analysis trusts it.
    /// * Call [`NativeQuery::declared_monotone`] only when the function is
    ///   genuinely monotone; the CALM classifier trusts the declaration
    ///   (and the empirical monotonicity checker can audit it).
    pub fn new(
        name: impl Into<String>,
        arity: usize,
        refs: impl IntoIterator<Item = RelName>,
        f: impl Fn(&Instance) -> Result<Relation, EvalError> + Send + Sync + 'static,
    ) -> Self {
        NativeQuery {
            name: name.into(),
            arity,
            f: Arc::new(f),
            monotone: false,
            refs: refs.into_iter().collect(),
        }
    }

    /// Declare the query monotone (trusted).
    pub fn declared_monotone(mut self) -> Self {
        self.monotone = true;
        self
    }
}

impl Query for NativeQuery {
    fn arity(&self) -> usize {
        self.arity
    }

    fn eval(&self, db: &Instance) -> Result<Relation, EvalError> {
        let out = (self.f)(db)?;
        if out.arity() != self.arity {
            return Err(EvalError::Other(format!(
                "native query `{}` returned arity {} instead of {}",
                self.name,
                out.arity(),
                self.arity
            )));
        }
        Ok(out)
    }

    fn is_monotone_syntactic(&self) -> bool {
        self.monotone
    }

    fn referenced_relations(&self) -> BTreeSet<RelName> {
        self.refs.clone()
    }

    fn describe(&self) -> String {
        format!("native:{}", self.name)
    }
}

impl fmt::Debug for NativeQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "native:{}/{}", self.name, self.arity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_relational::{fact, Schema, Tuple, Value};

    #[test]
    fn native_function_runs() {
        // cardinality parity of S, a classic nonmonotone query
        let q = NativeQuery::new("even-card", 0, [RelName::new("S")], |db| {
            let n = db.relation(&"S".into())?.len();
            Ok(if n % 2 == 0 {
                Relation::nullary_true()
            } else {
                Relation::nullary_false()
            })
        });
        let sch = Schema::new().with("S", 1);
        let mut db = Instance::empty(sch);
        assert!(q.eval(&db).unwrap().as_bool());
        db.insert_fact(fact!("S", 1)).unwrap();
        assert!(!q.eval(&db).unwrap().as_bool());
        assert!(!q.is_monotone_syntactic());
        assert!(q.referenced_relations().contains(&"S".into()));
    }

    #[test]
    fn arity_postcondition_enforced() {
        let q = NativeQuery::new("bad", 2, [], |_| {
            let mut r = Relation::empty(1);
            r.insert(Tuple::new(vec![Value::int(1)])).unwrap();
            Ok(r)
        });
        let db = Instance::empty(Schema::new());
        assert!(q.eval(&db).is_err());
    }

    #[test]
    fn declared_monotone_is_reported() {
        let q = NativeQuery::new("copy", 1, [RelName::new("S")], |db| {
            Ok(db.relation(&"S".into())?)
        })
        .declared_monotone();
        assert!(q.is_monotone_syntactic());
        assert!(q.describe().contains("copy"));
    }
}

//! The columnar join executor: conjunctions evaluated directly over
//! sorted-run storage.
//!
//! A [`Frame`] is the columnar counterpart of a `Vec<Bindings>`: one
//! flat `Vec<Vid>` per bound variable, all the same length. Joining an
//! atom appends matching rows by copying packed `u32` ids — no
//! `Bindings` clone, no `Tuple` materialization, no tree insert —
//! either by scanning the relation's run (the seed-order scan mode) or
//! by probing a run view for the row range matching the bound columns
//! (the indexed mode). Head projection gathers variable columns into a
//! fresh [`Run`], so a rule firing goes from stored runs to a derived
//! run without ever leaving the interned-id domain.
//!
//! The executor only runs when every source relation is columnar;
//! engines fall back to the generic `Bindings` path otherwise (which is
//! exactly what `RTX_STORAGE=btree` forces, keeping the btree engine a
//! full-pipeline oracle).

use crate::error::EvalError;
use crate::term::{Atom, Term, Var};
use rtx_relational::{Run, Tuple, Value, Vid};
use std::sync::Arc;

/// Relations this small are joined by scan even in indexed mode — same
/// policy as `Atom::join_indexed`.
const SCAN_THRESHOLD: usize = 16;

/// How one atom position relates to the frame being joined.
enum Slot {
    /// A constant in the atom: candidate rows must carry this id.
    Const(Vid),
    /// A variable already bound by the frame (column index).
    Bound(usize),
    /// First occurrence of a fresh variable: binds from the row.
    Fresh,
    /// Repeated fresh variable: must equal the atom position of its
    /// first occurrence.
    Dup(usize),
}

/// A set of partial variable bindings in columnar form.
pub(crate) struct Frame {
    vars: Vec<Var>,
    cols: Vec<Vec<Vid>>,
    rows: usize,
}

impl Frame {
    /// The unit frame: no variables, one (empty) binding.
    pub(crate) fn unit() -> Frame {
        Frame {
            vars: Vec::new(),
            cols: Vec::new(),
            rows: 1,
        }
    }

    /// Number of bindings.
    #[cfg(test)]
    pub(crate) fn rows(&self) -> usize {
        self.rows
    }

    /// Is the frame empty (no bindings at all)?
    pub(crate) fn is_empty(&self) -> bool {
        self.rows == 0
    }

    fn col_of(&self, v: Var) -> Option<usize> {
        self.vars.iter().position(|&w| w == v)
    }

    /// Classify the atom's positions against the current frame and
    /// list the fresh variables in first-occurrence order.
    fn slots(&self, atom: &Atom) -> (Vec<Slot>, Vec<Var>) {
        let mut slots = Vec::with_capacity(atom.terms.len());
        let mut fresh: Vec<Var> = Vec::new();
        for (p, t) in atom.terms.iter().enumerate() {
            let slot = match t {
                Term::Const(c) => Slot::Const(Vid::from_value(c)),
                Term::Var(v) => {
                    if let Some(c) = self.col_of(*v) {
                        Slot::Bound(c)
                    } else {
                        match atom.terms[..p].iter().position(|u| u.as_var() == Some(v)) {
                            Some(first) => Slot::Dup(first),
                            None => {
                                fresh.push(*v);
                                Slot::Fresh
                            }
                        }
                    }
                }
            };
            slots.push(slot);
        }
        (slots, fresh)
    }

    /// Join the atom against `run`, appending fresh-variable columns.
    ///
    /// `indexed` selects the access path: a cached run view probed on
    /// the constant/bound columns, or a full scan of the run per
    /// binding (the seed baseline). Both enumerate candidate rows in
    /// run (scan) order, so the output row order — and therefore
    /// everything downstream — is identical.
    pub(crate) fn join_atom(&self, atom: &Atom, run: &Arc<Run>, indexed: bool) -> Frame {
        let (slots, fresh) = self.slots(atom);
        // First unconstrained atom against a unit frame: the result is
        // the run's columns verbatim — copy them wholesale.
        if self.vars.is_empty() && self.rows == 1 && fresh.len() == slots.len() {
            return Frame {
                vars: fresh,
                cols: (0..slots.len()).map(|p| run.col(p).to_vec()).collect(),
                rows: run.len(),
            };
        }
        let out_vars: Vec<Var> = self.vars.iter().copied().chain(fresh).collect();
        let mut out_cols: Vec<Vec<Vid>> = vec![Vec::new(); out_vars.len()];
        let nold = self.vars.len();

        // Key columns for the probe: every position whose id is known
        // before looking at the row.
        let key_cols: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Slot::Const(_) | Slot::Bound(_)))
            .map(|(p, _)| p)
            .collect();
        let use_probe = indexed && !key_cols.is_empty() && run.len() > SCAN_THRESHOLD;
        let view = use_probe.then(|| run.view(&key_cols));
        let mut key: Vec<Vid> = Vec::with_capacity(key_cols.len());

        let emit = |out_cols: &mut Vec<Vec<Vid>>, fi: usize, ri: usize| {
            for (c, col) in out_cols[..nold].iter_mut().enumerate() {
                col.push(self.cols[c][fi]);
            }
            let mut next = nold;
            for (p, s) in slots.iter().enumerate() {
                if matches!(s, Slot::Fresh) {
                    out_cols[next].push(run.col(p)[ri]);
                    next += 1;
                }
            }
        };
        // Row-level checks the probe key can't cover: repeated fresh
        // variables always; constants and bound variables too on the
        // scan path.
        let verify = |fi: usize, ri: usize, probed: bool| -> bool {
            for (p, s) in slots.iter().enumerate() {
                let ok = match s {
                    Slot::Const(k) => probed || run.col(p)[ri] == *k,
                    Slot::Bound(c) => probed || run.col(p)[ri] == self.cols[*c][fi],
                    Slot::Fresh => true,
                    Slot::Dup(first) => run.col(p)[ri] == run.col(*first)[ri],
                };
                if !ok {
                    return false;
                }
            }
            true
        };

        let mut out_rows = 0usize;
        for fi in 0..self.rows {
            match &view {
                Some(view) => {
                    key.clear();
                    for &p in &key_cols {
                        key.push(match &slots[p] {
                            Slot::Const(k) => *k,
                            Slot::Bound(c) => self.cols[*c][fi],
                            _ => unreachable!("key columns are const or bound"),
                        });
                    }
                    let hits = view
                        .probe_rows(&key)
                        .expect("columnar runs build view indexes");
                    for ri in hits {
                        if verify(fi, ri, true) {
                            emit(&mut out_cols, fi, ri);
                            out_rows += 1;
                        }
                    }
                }
                None => {
                    for ri in 0..run.len() {
                        if verify(fi, ri, false) {
                            emit(&mut out_cols, fi, ri);
                            out_rows += 1;
                        }
                    }
                }
            }
        }
        Frame {
            vars: out_vars,
            cols: out_cols,
            rows: out_rows,
        }
    }

    /// Resolve a term to a per-row id source, or `None` if it is an
    /// unbound variable.
    fn source(&self, t: &Term) -> Option<Src> {
        match t {
            Term::Const(c) => Some(Src::Lit(Vid::from_value(c))),
            Term::Var(v) => self.col_of(*v).map(Src::Col),
        }
    }

    /// Keep only rows where `x ≠ y`. Errors if either side is unbound.
    pub(crate) fn retain_diseq(&mut self, x: &Term, y: &Term) -> Result<(), EvalError> {
        let unsafe_err = || EvalError::Unsafe {
            reason: "nonequality over unbound variable".into(),
        };
        let sx = self.source(x).ok_or_else(unsafe_err)?;
        let sy = self.source(y).ok_or_else(unsafe_err)?;
        self.retain(|f, r| sx.get(f, r) != sy.get(f, r));
        Ok(())
    }

    /// Keep only rows whose instantiation of `atom` is *not* in `run`
    /// (stratified negation). Errors if any atom variable is unbound.
    pub(crate) fn retain_not_in(&mut self, atom: &Atom, run: &Run) -> Result<(), EvalError> {
        let srcs: Vec<Src> = atom
            .terms
            .iter()
            .map(|t| {
                self.source(t).ok_or_else(|| EvalError::Unsafe {
                    reason: format!("negated atom {atom} unbound"),
                })
            })
            .collect::<Result<_, _>>()?;
        let mut key: Vec<Vid> = vec![Vid::from_value(&Value::int(0)); srcs.len()];
        self.retain(|f, r| {
            for (k, s) in key.iter_mut().zip(&srcs) {
                *k = s.get(f, r);
            }
            !run.contains_vids(&key)
        });
        Ok(())
    }

    /// Retain rows satisfying the predicate (given the frame and row).
    fn retain(&mut self, mut pred: impl FnMut(&Frame, usize) -> bool) {
        let keep: Vec<u32> = (0..self.rows)
            .filter(|&r| pred(self, r))
            .map(|r| r as u32)
            .collect();
        if keep.len() == self.rows {
            return;
        }
        for col in &mut self.cols {
            let old = std::mem::take(col);
            *col = keep.iter().map(|&r| old[r as usize]).collect();
        }
        self.rows = keep.len();
    }

    /// Project the head terms into a sorted, deduplicated [`Run`] —
    /// the derived relation of one rule firing. Errors if a head
    /// variable is unbound.
    pub(crate) fn project(&self, terms: &[Term]) -> Result<Run, EvalError> {
        let srcs: Vec<Src> = terms
            .iter()
            .map(|t| {
                self.source(t).ok_or_else(|| EvalError::Unsafe {
                    reason: "head term unbound".into(),
                })
            })
            .collect::<Result<_, _>>()?;
        let cols: Vec<Vec<Vid>> = srcs
            .iter()
            .map(|s| match s {
                Src::Lit(k) => vec![*k; self.rows],
                Src::Col(c) => self.cols[*c].clone(),
            })
            .collect();
        Ok(Run::from_cols(self.rows, cols))
    }

    /// Group the frame's rows by their instantiation of `terms` and
    /// return each distinct tuple with its multiplicity — the firing
    /// counts a counting-maintenance engine needs. Unlike
    /// [`Frame::project`] nothing is deduplicated away; every row is a
    /// firing. Errors if a term variable is unbound.
    pub(crate) fn project_counts(&self, terms: &[Term]) -> Result<Vec<(Tuple, u64)>, EvalError> {
        let srcs: Vec<Src> = terms
            .iter()
            .map(|t| {
                self.source(t).ok_or_else(|| EvalError::Unsafe {
                    reason: "head term unbound".into(),
                })
            })
            .collect::<Result<_, _>>()?;
        let mut rows: Vec<Vec<Vid>> = (0..self.rows)
            .map(|r| srcs.iter().map(|s| s.get(self, r)).collect())
            .collect();
        // Group by raw id (equality-compatible with value equality,
        // since the encoding is canonical).
        rows.sort_unstable_by(|a, b| a.iter().map(|v| v.raw()).cmp(b.iter().map(|v| v.raw())));
        let mut out: Vec<(Tuple, u64)> = Vec::new();
        let mut i = 0;
        while i < rows.len() {
            let mut j = i + 1;
            while j < rows.len() && rows[j] == rows[i] {
                j += 1;
            }
            let t: Tuple = rows[i].iter().map(|v| v.value()).collect();
            out.push((t, (j - i) as u64));
            i = j;
        }
        Ok(out)
    }

    /// Materialize one row's instantiation of `terms` as a [`Tuple`].
    #[cfg(test)]
    fn tuple_at(&self, terms: &[Term], r: usize) -> rtx_relational::Tuple {
        terms
            .iter()
            .map(|t| match self.source(t).expect("bound") {
                Src::Lit(k) => k.value(),
                Src::Col(c) => self.cols[c][r].value(),
            })
            .collect()
    }
}

/// A per-row id source: a literal or a frame column.
enum Src {
    Lit(Vid),
    Col(usize),
}

impl Src {
    #[inline]
    fn get(&self, f: &Frame, r: usize) -> Vid {
        match self {
            Src::Lit(k) => *k,
            Src::Col(c) => f.cols[*c][r],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom;
    use crate::term::Bindings;
    use rtx_relational::{tuple, Relation, Tuple};

    fn run_of(tuples: &[Tuple]) -> Arc<Run> {
        let arity = tuples.first().map(|t| t.arity()).unwrap_or(0);
        Relation::from_tuples_in(
            rtx_relational::StorageMode::Columnar,
            arity,
            tuples.iter().cloned(),
        )
        .unwrap()
        .columnar_run()
        .unwrap()
    }

    /// The generic-path answer for the same join, as an oracle.
    fn generic_join(atoms: &[Atom], runs: &[Arc<Run>], indexed: bool) -> Vec<Bindings> {
        let mut envs = vec![Bindings::new()];
        for (a, r) in atoms.iter().zip(runs) {
            let rel = Relation::from_run(Run::from_sorted(r.arity(), r.rows().iter()));
            envs = if indexed {
                a.join_indexed(&rel, &envs)
            } else {
                a.join(&rel, &envs)
            };
        }
        envs
    }

    fn frame_join(atoms: &[Atom], runs: &[Arc<Run>], indexed: bool) -> Frame {
        let mut f = Frame::unit();
        for (a, r) in atoms.iter().zip(runs) {
            f = f.join_atom(a, r, indexed);
        }
        f
    }

    #[test]
    fn two_hop_join_matches_generic_both_paths() {
        let e = run_of(&(0..40i64).map(|i| tuple![i, i + 1]).collect::<Vec<_>>());
        let atoms = [atom!("E"; @"X", @"Y"), atom!("E"; @"Y", @"Z")];
        let runs = [Arc::clone(&e), e];
        for indexed in [false, true] {
            let f = frame_join(&atoms, &runs, indexed);
            let envs = generic_join(&atoms, &runs, indexed);
            assert_eq!(f.rows(), envs.len());
            let head = [Term::var("X"), Term::var("Z")];
            let got: Vec<Tuple> = (0..f.rows()).map(|r| f.tuple_at(&head, r)).collect();
            let want: Vec<Tuple> = envs
                .iter()
                .map(|e| {
                    head.iter()
                        .map(|t| t.resolve(e).unwrap())
                        .collect::<Tuple>()
                })
                .collect();
            assert_eq!(got, want, "indexed={indexed}");
        }
    }

    #[test]
    fn constants_and_repeated_vars() {
        let r = run_of(&[
            tuple![1, 1, 2],
            tuple![1, 2, 2],
            tuple![1, 2, 3],
            tuple![2, 2, 2],
        ]);
        // R(1, X, X): constant first column, repeated fresh variable.
        let a = atom!("R"; 1, @"X", @"X");
        for indexed in [false, true] {
            let f = Frame::unit().join_atom(&a, &r, indexed);
            assert_eq!(f.rows(), 1, "indexed={indexed}");
            assert_eq!(f.tuple_at(&[Term::var("X")], 0), tuple![2]);
        }
    }

    #[test]
    fn bound_vars_probe_matches_scan() {
        let e = run_of(&(0..30i64).map(|i| tuple![i % 5, i]).collect::<Vec<_>>());
        let s = run_of(&(0..5i64).map(|i| tuple![i, i * 10]).collect::<Vec<_>>());
        let atoms = [atom!("S"; @"A", @"B"), atom!("E"; @"A", @"C")];
        let runs = [s, e];
        let scan = frame_join(&atoms, &runs, false);
        let probe = frame_join(&atoms, &runs, true);
        let head = [Term::var("A"), Term::var("B"), Term::var("C")];
        let a: Vec<Tuple> = (0..scan.rows()).map(|r| scan.tuple_at(&head, r)).collect();
        let b: Vec<Tuple> = (0..probe.rows())
            .map(|r| probe.tuple_at(&head, r))
            .collect();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn filters_and_projection() {
        let e = run_of(&[tuple![1, 1], tuple![1, 2], tuple![2, 3], tuple![3, 3]]);
        let s = run_of(&[tuple![2]]);
        let mut f = Frame::unit().join_atom(&atom!("E"; @"X", @"Y"), &e, true);
        // X ≠ Y drops (1,1) and (3,3)
        f.retain_diseq(&Term::var("X"), &Term::var("Y")).unwrap();
        assert_eq!(f.rows(), 2);
        // ¬S(X) drops (2,3)
        f.retain_not_in(&atom!("S"; @"X"), &s).unwrap();
        assert_eq!(f.rows(), 1);
        let out = f.project(&[Term::var("Y"), Term::var("X")]).unwrap();
        assert_eq!(out.rows(), &[tuple![2, 1]]);
        // projection sorts and dedups
        let dup = f.project(&[Term::cons(7)]).unwrap();
        assert_eq!(dup.rows(), &[tuple![7]]);
    }

    #[test]
    fn project_counts_keeps_multiplicities() {
        // Two-hop over a diamond: 1→2→4 and 1→3→4 both derive (1,4).
        let e = run_of(&[tuple![1, 2], tuple![1, 3], tuple![2, 4], tuple![3, 4]]);
        let atoms = [atom!("E"; @"X", @"Y"), atom!("E"; @"Y", @"Z")];
        let mut f = Frame::unit();
        for a in &atoms {
            f = f.join_atom(a, &e, true);
        }
        let counts = f.project_counts(&[Term::var("X"), Term::var("Z")]).unwrap();
        assert_eq!(counts, vec![(tuple![1, 4], 2)]);
        // Projecting onto a constant folds every firing together.
        let folded = f.project_counts(&[Term::cons(7)]).unwrap();
        assert_eq!(folded, vec![(tuple![7], 2)]);
        // Unbound head variables error like the generic path.
        assert!(f.project_counts(&[Term::var("Q")]).is_err());
    }

    #[test]
    fn unbound_filter_vars_error() {
        let e = run_of(&[tuple![1, 2]]);
        let mut f = Frame::unit().join_atom(&atom!("E"; @"X", @"Y"), &e, true);
        assert!(f.retain_diseq(&Term::var("X"), &Term::var("Q")).is_err());
        assert!(f.retain_not_in(&atom!("S"; @"Q"), &e).is_err());
        assert!(f.project(&[Term::var("Q")]).is_err());
    }
}

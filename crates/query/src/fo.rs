//! First-order logic under the **active-domain semantics** — the paper's
//! default local query language for transducers.
//!
//! An FO formula `ϕ(x1, …, xk)` expresses the k-ary query
//! `ϕ(I) = {(a1,…,ak) ∈ adom(I)^k | (adom(I), I) ⊨ ϕ[a1,…,ak]}`
//! (paper, Section 2): quantifiers range over the active domain of the
//! instance, and output tuples are drawn from the active domain.
//!
//! The evaluator is a hybrid: top-level positive conjuncts are used as
//! *generators* (joined relationally, as a conjunctive-query engine
//! would), and only the residual formula is checked per candidate
//! binding, with quantifiers enumerating the active domain. This keeps
//! the constructions of the paper (whose send/insert queries are mostly
//! conjunctive) fast, while still supporting full FO.

use crate::error::EvalError;
use crate::plan::JoinMode;
use crate::query::Query;
use crate::term::{Atom, Bindings, Term, Var};
use rtx_relational::{Instance, RelName, Relation, Tuple, Value};
use std::collections::BTreeSet;
use std::fmt;

/// An FO formula.
#[derive(Clone, PartialEq, Eq)]
pub enum Formula {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// A relational atom `R(t̄)`.
    Atom(Atom),
    /// Equality `t1 = t2`.
    Eq(Term, Term),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction (empty = true).
    And(Vec<Formula>),
    /// Disjunction (empty = false).
    Or(Vec<Formula>),
    /// Existential quantification over the active domain.
    Exists(Vec<Var>, Box<Formula>),
    /// Universal quantification over the active domain.
    Forall(Vec<Var>, Box<Formula>),
}

impl Formula {
    /// `R(t̄)` as a formula.
    pub fn atom(a: Atom) -> Formula {
        Formula::Atom(a)
    }

    /// Conjunction of the given formulas.
    pub fn and(fs: impl IntoIterator<Item = Formula>) -> Formula {
        Formula::And(fs.into_iter().collect())
    }

    /// Disjunction of the given formulas.
    pub fn or(fs: impl IntoIterator<Item = Formula>) -> Formula {
        Formula::Or(fs.into_iter().collect())
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// `∃ vars . f`
    pub fn exists<V: Into<Var>>(vars: impl IntoIterator<Item = V>, f: Formula) -> Formula {
        Formula::Exists(vars.into_iter().map(Into::into).collect(), Box::new(f))
    }

    /// `∀ vars . f`
    pub fn forall<V: Into<Var>>(vars: impl IntoIterator<Item = V>, f: Formula) -> Formula {
        Formula::Forall(vars.into_iter().map(Into::into).collect(), Box::new(f))
    }

    /// `t1 = t2`
    pub fn eq(a: Term, b: Term) -> Formula {
        Formula::Eq(a, b)
    }

    /// `t1 ≠ t2`
    pub fn neq(a: Term, b: Term) -> Formula {
        Formula::not(Formula::Eq(a, b))
    }

    /// Free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_free(&mut BTreeSet::new(), &mut out);
        out
    }

    fn collect_free(&self, bound: &mut BTreeSet<Var>, out: &mut BTreeSet<Var>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => {
                for t in &a.terms {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            out.insert(*v);
                        }
                    }
                }
            }
            Formula::Eq(a, b) => {
                for t in [a, b] {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            out.insert(*v);
                        }
                    }
                }
            }
            Formula::Not(f) => f.collect_free(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free(bound, out);
                }
            }
            Formula::Exists(vs, f) | Formula::Forall(vs, f) => {
                let newly: Vec<Var> = vs.iter().filter(|v| bound.insert(*(*v))).cloned().collect();
                f.collect_free(bound, out);
                for v in newly {
                    bound.remove(&v);
                }
            }
        }
    }

    /// All relation names mentioned.
    pub fn relations(&self) -> BTreeSet<RelName> {
        let mut out = BTreeSet::new();
        self.collect_relations(&mut out);
        out
    }

    fn collect_relations(&self, out: &mut BTreeSet<RelName>) {
        match self {
            Formula::True | Formula::False | Formula::Eq(_, _) => {}
            Formula::Atom(a) => {
                out.insert(a.pred.clone());
            }
            Formula::Not(f) => f.collect_relations(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_relations(out);
                }
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.collect_relations(out),
        }
    }

    /// Is the formula positive-existential (no `∀`; `¬` only directly on
    /// equalities)? Such formulas express monotone queries: adding facts
    /// only grows the active domain and the relations, so every witness
    /// survives, and nonequalities do not read the instance at all.
    pub fn is_positive_existential(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) | Formula::Eq(_, _) => true,
            Formula::Not(f) => matches!(**f, Formula::Eq(_, _)),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(|f| f.is_positive_existential()),
            Formula::Exists(_, f) => f.is_positive_existential(),
            Formula::Forall(_, _) => false,
        }
    }

    /// Evaluate under complete bindings for the free variables.
    fn holds(&self, db: &Instance, adom: &[Value], env: &Bindings) -> Result<bool, EvalError> {
        match self {
            Formula::True => Ok(true),
            Formula::False => Ok(false),
            Formula::Atom(a) => {
                let rel = db.relation(&a.pred)?;
                if rel.arity() != a.arity() {
                    return Err(EvalError::Rel(rtx_relational::RelError::ArityMismatch {
                        rel: a.pred.clone(),
                        expected: rel.arity(),
                        found: a.arity(),
                    }));
                }
                let t = a.instantiate(env).ok_or_else(|| EvalError::Unsafe {
                    reason: format!("atom {a} has an unbound variable at evaluation time"),
                })?;
                Ok(rel.contains(&t))
            }
            Formula::Eq(a, b) => {
                let (va, vb) = (a.resolve(env), b.resolve(env));
                match (va, vb) {
                    (Some(x), Some(y)) => Ok(x == y),
                    _ => Err(EvalError::Unsafe {
                        reason: "equality over an unbound variable".into(),
                    }),
                }
            }
            Formula::Not(f) => Ok(!f.holds(db, adom, env)?),
            Formula::And(fs) => {
                for f in fs {
                    if !f.holds(db, adom, env)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Or(fs) => {
                for f in fs {
                    if f.holds(db, adom, env)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Formula::Exists(vs, f) => Self::quantify(db, adom, env, vs, f, false),
            Formula::Forall(vs, f) => Self::quantify(db, adom, env, vs, f, true),
        }
    }

    /// Shared quantifier loop: `universal = false` searches for a witness,
    /// `universal = true` searches for a counterexample.
    fn quantify(
        db: &Instance,
        adom: &[Value],
        env: &Bindings,
        vars: &[Var],
        f: &Formula,
        universal: bool,
    ) -> Result<bool, EvalError> {
        fn rec(
            db: &Instance,
            adom: &[Value],
            env: &mut Bindings,
            vars: &[Var],
            f: &Formula,
            universal: bool,
        ) -> Result<bool, EvalError> {
            match vars.split_first() {
                None => {
                    let h = f.holds(db, adom, env)?;
                    Ok(if universal { !h } else { h })
                }
                Some((v, rest)) => {
                    let shadowed = env.get(v).cloned();
                    for a in adom {
                        env.insert(*v, *a);
                        if rec(db, adom, env, rest, f, universal)? {
                            match shadowed {
                                Some(old) => env.insert(*v, old),
                                None => env.remove(v),
                            };
                            return Ok(true);
                        }
                    }
                    match shadowed {
                        Some(old) => env.insert(*v, old),
                        None => env.remove(v),
                    };
                    Ok(false)
                }
            }
        }
        let mut scratch = env.clone();
        let found = rec(db, adom, &mut scratch, vars, f, universal)?;
        Ok(if universal { !found } else { found })
    }
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::Eq(a, b) => write!(f, "{a} = {b}"),
            Formula::Not(inner) => write!(f, "¬({inner:?})"),
            Formula::And(fs) => {
                if fs.is_empty() {
                    return write!(f, "true");
                }
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{g:?}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                if fs.is_empty() {
                    return write!(f, "false");
                }
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{g:?}")?;
                }
                write!(f, ")")
            }
            Formula::Exists(vs, g) => {
                write!(f, "∃")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ".({g:?})")
            }
            Formula::Forall(vs, g) => {
                write!(f, "∀")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ".({g:?})")
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An FO query `ϕ(x1, …, xk)`: a formula with a designated tuple of head
/// variables.
#[derive(Clone, PartialEq, Eq)]
pub struct FoQuery {
    head: Vec<Var>,
    formula: Formula,
    join_mode: JoinMode,
}

impl FoQuery {
    /// Build an FO query, validating that every free variable of the
    /// formula appears in the head.
    pub fn new<V: Into<Var>>(
        head: impl IntoIterator<Item = V>,
        formula: Formula,
    ) -> Result<Self, EvalError> {
        let head: Vec<Var> = head.into_iter().map(Into::into).collect();
        let head_set: BTreeSet<_> = head.iter().cloned().collect();
        for v in formula.free_vars() {
            if !head_set.contains(&v) {
                return Err(EvalError::Unsafe {
                    reason: format!("free variable {v} does not appear in the head"),
                });
            }
        }
        Ok(FoQuery {
            head,
            formula,
            join_mode: JoinMode::default(),
        })
    }

    /// A boolean (nullary) query; the formula must be a sentence.
    pub fn sentence(formula: Formula) -> Result<Self, EvalError> {
        FoQuery::new(Vec::<Var>::new(), formula)
    }

    /// Select a join mode for the generator phase (ablation hook;
    /// defaults to indexed).
    pub fn with_join_mode(mut self, mode: JoinMode) -> Self {
        self.join_mode = mode;
        self
    }

    /// The head variables.
    pub fn head(&self) -> &[Var] {
        &self.head
    }

    /// The formula.
    pub fn formula(&self) -> &Formula {
        &self.formula
    }

    /// Split a formula into top-level conjuncts.
    fn conjuncts_of(formula: &Formula) -> Vec<&Formula> {
        fn flatten<'a>(f: &'a Formula, out: &mut Vec<&'a Formula>) {
            match f {
                Formula::And(fs) => {
                    for g in fs {
                        flatten(g, out);
                    }
                }
                other => out.push(other),
            }
        }
        let mut out = Vec::new();
        flatten(formula, &mut out);
        out
    }

    /// The formula the generator phase evaluates: the body under a
    /// *safe* existential prefix, or the formula itself.
    ///
    /// `Q(x̄) = ∃ȳ φ` is a projection: when every `ȳ` is bound by a
    /// positive atom of `φ`'s top-level conjunction (and shadows no head
    /// variable), evaluating `φ`'s conjuncts as generator joins and
    /// projecting onto the head is equivalent to enumerating `ȳ` over
    /// the active domain — and turns the common ∃-conjunctive shape
    /// into an indexable join instead of an `adom^|ȳ|` sweep.
    fn generator_body(&self) -> &Formula {
        let mut qvars: Vec<&Var> = Vec::new();
        let mut body = &self.formula;
        while let Formula::Exists(vs, inner) = body {
            qvars.extend(vs.iter());
            body = inner;
        }
        if qvars.is_empty() {
            return &self.formula;
        }
        if qvars.iter().any(|v| self.head.contains(v)) {
            // a quantifier shadows a head variable: stripping would
            // conflate the two
            return &self.formula;
        }
        let mut gen_vars: BTreeSet<Var> = BTreeSet::new();
        for c in Self::conjuncts_of(body) {
            if let Formula::Atom(a) = c {
                gen_vars.extend(a.vars());
            }
        }
        if qvars.iter().all(|v| gen_vars.contains(*v)) {
            body
        } else {
            &self.formula
        }
    }
}

impl Query for FoQuery {
    fn arity(&self) -> usize {
        self.head.len()
    }

    fn eval(&self, db: &Instance) -> Result<Relation, EvalError> {
        // Phase 1: use top-level positive atoms as generators (looking
        // through a safe existential prefix — projection).
        let conjuncts = Self::conjuncts_of(self.generator_body());
        let mut generators: Vec<&Atom> = Vec::new();
        let mut checks: Vec<&Formula> = Vec::new();
        for c in &conjuncts {
            match c {
                Formula::Atom(a) => generators.push(a),
                other => checks.push(other),
            }
        }

        // Columnar fast path: a pure conjunctive shape — no residual
        // conjuncts, every head variable bound by a generator — joins
        // directly over sorted runs and never materializes bindings or
        // the active domain (head values come from stored facts, so the
        // adom(I)^k membership condition holds by construction).
        'frame: {
            if !checks.is_empty() {
                break 'frame;
            }
            let gen_vars: BTreeSet<Var> = generators.iter().flat_map(|a| a.vars()).collect();
            if !self.head.iter().all(|v| gen_vars.contains(v)) {
                break 'frame;
            }
            let mut runs = Vec::with_capacity(generators.len());
            for a in &generators {
                let Some(rel) = crate::plan::lookup(db, a)? else {
                    return Ok(Relation::empty(self.head.len()));
                };
                match rel.columnar_run() {
                    None => break 'frame, // btree source: generic path
                    Some(run) => runs.push(run),
                }
            }
            let indexed = self.join_mode == JoinMode::Indexed;
            let mut frame = crate::frame::Frame::unit();
            for (a, run) in generators.iter().zip(&runs) {
                frame = frame.join_atom(a, run, indexed);
                if frame.is_empty() {
                    return Ok(Relation::empty(self.head.len()));
                }
            }
            let head_terms: Vec<Term> = self.head.iter().map(|&v| Term::Var(v)).collect();
            return Ok(Relation::from_run(frame.project(&head_terms)?));
        }

        let adom: Vec<Value> = db.adom().into_iter().collect();
        let adom_set: BTreeSet<&Value> = adom.iter().collect();

        let mut envs: Vec<Bindings> = vec![Bindings::new()];
        for a in &generators {
            let Some(rel) = crate::plan::lookup(db, a)? else {
                return Ok(Relation::empty(self.head.len()));
            };
            envs = match self.join_mode {
                JoinMode::Scan => a.join(rel, &envs),
                JoinMode::Indexed => a.join_indexed(rel, &envs),
            };
            if envs.is_empty() {
                return Ok(Relation::empty(self.head.len()));
            }
        }

        // Phase 2: enumerate the active domain for head variables the
        // generators left unbound.
        let bound_by_generators: BTreeSet<Var> = envs
            .first()
            .map(|e| e.keys().cloned().collect())
            .unwrap_or_default();
        let mut unbound: Vec<Var> = Vec::new();
        let mut seen = BTreeSet::new();
        for v in &self.head {
            if !bound_by_generators.contains(v) && seen.insert(*v) {
                unbound.push(*v);
            }
        }

        let mut out = Relation::empty(self.head.len());
        let mut stack: Vec<(Bindings, usize)> = envs.into_iter().map(|e| (e, 0)).collect();
        while let Some((env, depth)) = stack.pop() {
            if depth < unbound.len() {
                for a in &adom {
                    let mut e = env.clone();
                    e.insert(unbound[depth], *a);
                    stack.push((e, depth + 1));
                }
                continue;
            }
            // Phase 3: check the residual conjuncts.
            let mut ok = true;
            for c in &checks {
                if !c.holds(db, &adom, &env)? {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }
            let values: Vec<Value> = self
                .head
                .iter()
                .map(|v| {
                    env.get(v).cloned().ok_or_else(|| EvalError::Unsafe {
                        reason: format!("head variable {v} unbound after evaluation"),
                    })
                })
                .collect::<Result<_, _>>()?;
            // Condition (i) of the paper: answers live in adom(I)^k. A
            // constant in the formula may lie outside the active domain.
            if values.iter().all(|v| adom_set.contains(v)) {
                out.insert(Tuple::new(values))?;
            }
        }
        Ok(out)
    }

    fn is_monotone_syntactic(&self) -> bool {
        self.formula.is_positive_existential()
    }

    fn referenced_relations(&self) -> BTreeSet<RelName> {
        self.formula.relations()
    }

    fn is_always_empty(&self) -> bool {
        matches!(self.formula, Formula::False)
            || matches!(&self.formula, Formula::Or(fs) if fs.is_empty())
    }

    fn describe(&self) -> String {
        format!("{self:?}")
    }
}

impl fmt::Debug for FoQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") ← {:?}", self.formula)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom;
    use rtx_relational::{fact, tuple, Schema};

    fn db_edges(edges: &[(i64, i64)]) -> Instance {
        let sch = Schema::new().with("E", 2).with("S", 1);
        let mut i = Instance::empty(sch);
        for &(a, b) in edges {
            i.insert_fact(fact!("E", a, b)).unwrap();
        }
        i
    }

    #[test]
    fn atom_query_selects_tuples() {
        let db = db_edges(&[(1, 2), (2, 3)]);
        let q = FoQuery::new(["X", "Y"], Formula::atom(atom!("E"; @"X", @"Y"))).unwrap();
        let r = q.eval(&db).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&tuple![1, 2]));
    }

    #[test]
    fn equality_selection_example3a() {
        // σ_{$1=$2}(E) — the paper's Example 3 (first part).
        let db = db_edges(&[(1, 1), (1, 2), (3, 3)]);
        let q = FoQuery::new(
            ["X", "Y"],
            Formula::and([
                Formula::atom(atom!("E"; @"X", @"Y")),
                Formula::eq(Term::var("X"), Term::var("Y")),
            ]),
        )
        .unwrap();
        let r = q.eval(&db).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&tuple![1, 1]));
        assert!(r.contains(&tuple![3, 3]));
    }

    #[test]
    fn join_composes_relations() {
        let db = db_edges(&[(1, 2), (2, 3), (3, 4)]);
        // two-step paths
        let q = FoQuery::new(
            ["X", "Z"],
            Formula::exists(
                ["Y"],
                Formula::and([
                    Formula::atom(atom!("E"; @"X", @"Y")),
                    Formula::atom(atom!("E"; @"Y", @"Z")),
                ]),
            ),
        )
        .unwrap();
        let r = q.eval(&db).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&tuple![1, 3]));
        assert!(r.contains(&tuple![2, 4]));
    }

    #[test]
    fn negation_under_active_domain() {
        // non-edges over the active domain
        let db = db_edges(&[(1, 2)]);
        let q = FoQuery::new(
            ["X", "Y"],
            Formula::not(Formula::atom(atom!("E"; @"X", @"Y"))),
        )
        .unwrap();
        let r = q.eval(&db).unwrap();
        // adom = {1,2}; pairs are (1,1),(1,2),(2,1),(2,2); (1,2) is an edge.
        assert_eq!(r.len(), 3);
        assert!(!r.contains(&tuple![1, 2]));
    }

    #[test]
    fn forall_sentence() {
        // "every S element has an outgoing edge"
        let sch = Schema::new().with("E", 2).with("S", 1);
        let mut db = Instance::empty(sch);
        db.insert_fact(fact!("S", 1)).unwrap();
        db.insert_fact(fact!("E", 1, 2)).unwrap();
        let q = FoQuery::sentence(Formula::forall(
            ["X"],
            Formula::or([
                Formula::not(Formula::atom(atom!("S"; @"X"))),
                Formula::exists(["Y"], Formula::atom(atom!("E"; @"X", @"Y"))),
            ]),
        ))
        .unwrap();
        assert!(q.eval(&db).unwrap().as_bool());
        db.insert_fact(fact!("S", 2)).unwrap(); // 2 has no outgoing edge
        assert!(!q.eval(&db).unwrap().as_bool());
    }

    #[test]
    fn emptiness_sentence() {
        // the paper's Example 10 kernel: "S is empty"
        let q = FoQuery::sentence(Formula::not(Formula::exists(
            ["X"],
            Formula::atom(atom!("S"; @"X")),
        )))
        .unwrap();
        let sch = Schema::new().with("S", 1).with("E", 2);
        let mut db = Instance::empty(sch);
        db.insert_fact(fact!("E", 1, 2)).unwrap(); // keeps adom nonempty
        assert!(q.eval(&db).unwrap().as_bool());
        db.insert_fact(fact!("S", 1)).unwrap();
        assert!(!q.eval(&db).unwrap().as_bool());
    }

    #[test]
    fn nullary_sentence_on_empty_adom() {
        // With an empty active domain, ∃x.S(x) is false and ¬∃x.S(x) true.
        let sch = Schema::new().with("S", 1);
        let db = Instance::empty(sch);
        let q = FoQuery::sentence(Formula::not(Formula::exists(
            ["X"],
            Formula::atom(atom!("S"; @"X")),
        )))
        .unwrap();
        assert!(q.eval(&db).unwrap().as_bool());
    }

    #[test]
    fn head_variable_not_in_formula_ranges_over_adom() {
        let db = db_edges(&[(1, 2)]);
        let q = FoQuery::new(
            ["X", "Y"],
            Formula::exists(["Z"], Formula::atom(atom!("E"; @"X", @"Z"))),
        )
        .unwrap();
        let r = q.eval(&db).unwrap();
        // X=1 (has an outgoing edge), Y ranges over adom {1,2}.
        assert_eq!(r.len(), 2);
        assert!(r.contains(&tuple![1, 1]));
        assert!(r.contains(&tuple![1, 2]));
    }

    #[test]
    fn constants_outside_adom_do_not_leak_into_output() {
        let db = db_edges(&[(1, 2)]);
        let q = FoQuery::new(["X"], Formula::eq(Term::var("X"), Term::cons(99))).unwrap();
        assert!(q.eval(&db).unwrap().is_empty());
        let q2 = FoQuery::new(["X"], Formula::eq(Term::var("X"), Term::cons(1))).unwrap();
        assert_eq!(q2.eval(&db).unwrap().len(), 1);
    }

    #[test]
    fn free_variable_validation() {
        let err = FoQuery::new(["X"], Formula::atom(atom!("E"; @"X", @"Y")));
        assert!(matches!(err, Err(EvalError::Unsafe { .. })));
    }

    #[test]
    fn positive_existential_detection() {
        let pe = Formula::exists(
            ["X"],
            Formula::and([
                Formula::atom(atom!("S"; @"X")),
                Formula::neq(Term::var("X"), Term::cons(1)),
            ]),
        );
        assert!(pe.is_positive_existential());
        assert!(!Formula::not(Formula::atom(atom!("S"; @"X"))).is_positive_existential());
        assert!(!Formula::forall(["X"], Formula::atom(atom!("S"; @"X"))).is_positive_existential());
    }

    #[test]
    fn monotone_queries_report_monotone() {
        let q = FoQuery::new(["X"], Formula::atom(atom!("S"; @"X"))).unwrap();
        assert!(q.is_monotone_syntactic());
        let q2 = FoQuery::new(["X"], Formula::not(Formula::atom(atom!("S"; @"X")))).unwrap();
        assert!(!q2.is_monotone_syntactic());
    }

    #[test]
    fn referenced_relations_collects_all() {
        let q = FoQuery::new(
            ["X"],
            Formula::or([
                Formula::atom(atom!("S"; @"X")),
                Formula::exists(["Y"], Formula::atom(atom!("E"; @"X", @"Y"))),
            ]),
        )
        .unwrap();
        let refs = q.referenced_relations();
        assert!(refs.contains(&"S".into()));
        assert!(refs.contains(&"E".into()));
        assert_eq!(refs.len(), 2);
    }

    #[test]
    fn always_empty_detection() {
        let q = FoQuery::new(["X"], Formula::False).unwrap();
        assert!(q.is_always_empty());
        let q2 = FoQuery::new(["X"], Formula::atom(atom!("S"; @"X"))).unwrap();
        assert!(!q2.is_always_empty());
    }

    #[test]
    fn quantifier_shadowing_is_handled() {
        // ∃X (S(X)) where X also in head: head X and quantified X are
        // different bindings; the inner one must not clobber the outer.
        let sch = Schema::new().with("S", 1).with("T", 1);
        let mut db = Instance::empty(sch);
        db.insert_fact(fact!("S", 1)).unwrap();
        db.insert_fact(fact!("T", 2)).unwrap();
        let q = FoQuery::new(
            ["X"],
            Formula::and([
                Formula::atom(atom!("T"; @"X")),
                Formula::exists(["X"], Formula::atom(atom!("S"; @"X"))),
            ]),
        )
        .unwrap();
        let r = q.eval(&db).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.contains(&tuple![2]));
    }

    #[test]
    fn genericity_under_renaming() {
        let db = db_edges(&[(1, 2), (2, 3)]);
        let q = FoQuery::new(
            ["X", "Z"],
            Formula::exists(
                ["Y"],
                Formula::and([
                    Formula::atom(atom!("E"; @"X", @"Y")),
                    Formula::atom(atom!("E"; @"Y", @"Z")),
                ]),
            ),
        )
        .unwrap();
        let h = rtx_relational::Iso::from_pairs(vec![
            (Value::int(1), Value::int(10)),
            (Value::int(2), Value::int(20)),
            (Value::int(3), Value::int(30)),
        ])
        .unwrap();
        let lhs = q.eval(&h.apply_instance(&db)).unwrap();
        let rhs = h.apply_relation(&q.eval(&db).unwrap());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn describe_is_readable() {
        let q = FoQuery::new(["X"], Formula::atom(atom!("S"; @"X"))).unwrap();
        assert!(q.describe().contains("S(X)"));
    }

    #[test]
    fn exists_prefix_becomes_generator_join() {
        // ∃Y (E(X,Y) ∧ E(Y,Z)): the two-hop join shape
        let q = FoQuery::new(
            ["X", "Z"],
            Formula::exists(
                ["Y"],
                Formula::and([
                    Formula::atom(atom!("E"; @"X", @"Y")),
                    Formula::atom(atom!("E"; @"Y", @"Z")),
                ]),
            ),
        )
        .unwrap();
        let db = db_edges(&[(1, 2), (2, 3), (2, 4), (5, 6)]);
        let out = q.eval(&db).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&tuple![1, 3]));
        assert!(out.contains(&tuple![1, 4]));
        // and with the scan mode (the results must not depend on it)
        let scan = q.with_join_mode(JoinMode::Scan).eval(&db).unwrap();
        assert_eq!(out, scan);
    }

    #[test]
    fn exists_prefix_with_residual_check() {
        // ∃Y (E(X,Y) ∧ ¬S(Y)): Y bound by a generator, checked by the
        // residual
        let q = FoQuery::new(
            ["X"],
            Formula::exists(
                ["Y"],
                Formula::and([
                    Formula::atom(atom!("E"; @"X", @"Y")),
                    Formula::not(Formula::atom(atom!("S"; @"Y"))),
                ]),
            ),
        )
        .unwrap();
        let mut db = db_edges(&[(1, 2), (3, 4)]);
        db.insert_fact(fact!("S", 2)).unwrap();
        let out = q.eval(&db).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![3]));
    }

    #[test]
    fn exists_shadowing_head_var_not_stripped() {
        // ∃X S(X) with head X: the quantified X is a *different*
        // variable; the head X ranges over the whole active domain.
        let q = FoQuery::new(
            ["X"],
            Formula::and([
                Formula::exists(["Y"], Formula::atom(atom!("S"; @"Y"))),
                Formula::eq(Term::var("X"), Term::var("X")),
            ]),
        )
        .unwrap();
        // (inner ∃ reached through And: generator_body must not strip a
        // *nested* quantifier — only a top-level prefix)
        let mut db = db_edges(&[(1, 2)]);
        db.insert_fact(fact!("S", 7)).unwrap();
        let out = q.eval(&db).unwrap();
        // every adom element qualifies
        assert_eq!(out.len(), db.adom().len());

        // a direct head shadow: ∃X S(X) with head [X] keeps the
        // enumeration semantics (head X free, formula closed)
        let shadow = FoQuery::new(
            ["X"],
            Formula::exists(["X"], Formula::atom(atom!("S"; @"X"))),
        );
        // head X is not free in the formula → constructor rejects or
        // evaluates as sentence-per-adom; accept either, but if it
        // builds, results must match the enumeration semantics.
        if let Ok(q) = shadow {
            let out = q.eval(&db).unwrap();
            assert_eq!(out.len(), db.adom().len());
        }
    }

    #[test]
    fn unused_exists_var_keeps_enumeration_semantics() {
        // ∃Y S(X) over an empty database: false (no witness for Y)
        let q = FoQuery::new(
            ["X"],
            Formula::exists(["Y"], Formula::atom(atom!("S"; @"X"))),
        )
        .unwrap();
        let db = db_edges(&[]);
        assert!(q.eval(&db).unwrap().is_empty());
    }
}

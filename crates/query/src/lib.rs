//! # rtx-query — query languages over the relational kernel
//!
//! The paper's transducer model is parameterized by a local query
//! language `L`. This crate supplies every `L` the paper uses:
//!
//! * [`fo`] — first-order logic under the active-domain semantics (the
//!   default transducer language);
//! * [`cq`] — conjunctive queries and UCQ¬ (Proposition 7,
//!   Corollary 14(3));
//! * [`datalog`] — Datalog with stratified negation, naive and semi-naive
//!   bottom-up evaluation, plus the immediate-consequence operator `T_P`
//!   (Theorem 6(5));
//! * [`while_lang`] — the *while* language (Lemma 5(3), Theorem 6(3,4));
//! * [`native`] — arbitrary Rust functions, modelling a computationally
//!   complete `L` (Theorem 6(1,2), Corollary 14(1));
//! * [`view`] — query composition through materialized views (used by
//!   every Theorem 6 construction);
//! * [`parser`] — text syntax for Datalog programs and FO formulas.
//!
//! Everything implements the [`Query`] trait and can be plugged into a
//! transducer.

#![warn(missing_docs)]

pub mod combinator;
pub mod cq;
pub mod datalog;
mod error;
pub mod fo;
pub(crate) mod frame;
pub mod incremental;
pub mod magic;
pub mod native;
pub mod parser;
pub mod plan;
mod query;
pub mod term;
pub mod view;
pub mod while_lang;

pub use combinator::{GatedQuery, UnionQuery};
pub use cq::{CqBuilder, CqRule, UcqQuery};
pub use datalog::{DatalogQuery, EvalStrategy, Literal, Program, Rule, TpQuery};
pub use error::EvalError;
pub use fo::{FoQuery, Formula};
pub use incremental::{FixpointStats, MaintainedFixpoint};
pub use magic::{MagicQuery, QueryMode};
pub use native::NativeQuery;
pub use plan::JoinMode;
pub use query::{CopyQuery, EmptyQuery, Query, QueryRef};
pub use term::{Atom, Bindings, Term, Var};
pub use view::ViewQuery;
pub use while_lang::{Guard, Stmt, WhileProgram, WhileQuery};

//! Conjunctive queries and unions thereof, with safe negation — UCQ¬.
//!
//! The paper notes (Proposition 7) that the multicast transducer of
//! Lemma 5(1) can be implemented with UCQ¬ local queries, and
//! Corollary 14(3) characterizes Datalog via nonrecursive-Datalog
//! (equivalently, UCQ¬-composition) transducers. This module provides the
//! syntactic class together with a join-based evaluator that is much
//! faster than brute-force FO enumeration.

use crate::error::EvalError;
use crate::query::Query;
use crate::term::{Atom, Bindings, Term, Var};
use rtx_relational::{Instance, RelName, Relation, Tuple, Value};
use std::collections::BTreeSet;
use std::fmt;

/// One conjunctive rule with optional safe negation and nonequalities:
/// `head(t̄) ← p1, …, pm, ¬n1, …, ¬nj, u1 ≠ v1, …`.
#[derive(Clone, PartialEq, Eq)]
pub struct CqRule {
    head: Vec<Term>,
    pos: Vec<Atom>,
    neg: Vec<Atom>,
    diseq: Vec<(Term, Term)>,
}

impl CqRule {
    /// Build and validate a rule.
    ///
    /// Safety: every variable in the head, in a negated atom, or in a
    /// nonequality must occur in some positive atom.
    pub fn new(
        head: Vec<Term>,
        pos: Vec<Atom>,
        neg: Vec<Atom>,
        diseq: Vec<(Term, Term)>,
    ) -> Result<Self, EvalError> {
        let mut positive_vars: BTreeSet<Var> = BTreeSet::new();
        for a in &pos {
            positive_vars.extend(a.vars());
        }
        let mut need: Vec<(&str, Var)> = Vec::new();
        for t in &head {
            if let Term::Var(v) = t {
                need.push(("head", *v));
            }
        }
        for a in &neg {
            for v in a.vars() {
                need.push(("negated atom", v));
            }
        }
        for (a, b) in &diseq {
            for t in [a, b] {
                if let Term::Var(v) = t {
                    need.push(("nonequality", *v));
                }
            }
        }
        for (what, v) in need {
            if !positive_vars.contains(&v) {
                return Err(EvalError::Unsafe {
                    reason: format!("{what} variable {v} is not bound by a positive atom"),
                });
            }
        }
        Ok(CqRule {
            head,
            pos,
            neg,
            diseq,
        })
    }

    /// Head terms.
    pub fn head(&self) -> &[Term] {
        &self.head
    }

    /// Positive body atoms.
    pub fn positive(&self) -> &[Atom] {
        &self.pos
    }

    /// Negated body atoms.
    pub fn negated(&self) -> &[Atom] {
        &self.neg
    }

    /// Is the rule negation-free (nonequalities allowed)?
    pub fn is_positive(&self) -> bool {
        self.neg.is_empty()
    }

    /// Evaluate the rule against `db`, emitting head tuples into `out`.
    fn eval_into(&self, db: &Instance, out: &mut Relation) -> Result<(), EvalError> {
        let mut envs: Vec<Bindings> = vec![Bindings::new()];
        for a in &self.pos {
            let Some(rel) = crate::plan::lookup(db, a)? else {
                return Ok(());
            };
            envs = a.join_indexed(rel, &envs);
            if envs.is_empty() {
                return Ok(());
            }
        }
        'env: for env in envs {
            for a in &self.neg {
                let rel = db.relation(&a.pred)?;
                let t = a.instantiate(&env).ok_or_else(|| EvalError::Unsafe {
                    reason: format!("negated atom {a} unbound at evaluation"),
                })?;
                if rel.contains(&t) {
                    continue 'env;
                }
            }
            for (x, y) in &self.diseq {
                let (vx, vy) = (x.resolve(&env), y.resolve(&env));
                match (vx, vy) {
                    (Some(a), Some(b)) if a != b => {}
                    (Some(_), Some(_)) => continue 'env,
                    _ => {
                        return Err(EvalError::Unsafe {
                            reason: "nonequality over unbound variable".into(),
                        })
                    }
                }
            }
            let values: Vec<Value> = self
                .head
                .iter()
                .map(|t| {
                    t.resolve(&env).ok_or_else(|| EvalError::Unsafe {
                        reason: "head term unbound".into(),
                    })
                })
                .collect::<Result<_, _>>()?;
            out.insert(Tuple::new(values))?;
        }
        Ok(())
    }

    fn relations(&self) -> BTreeSet<RelName> {
        self.pos
            .iter()
            .chain(self.neg.iter())
            .map(|a| a.pred.clone())
            .collect()
    }
}

impl fmt::Debug for CqRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ") ← ")?;
        let mut first = true;
        for a in &self.pos {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{a}")?;
        }
        for a in &self.neg {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "¬{a}")?;
        }
        for (x, y) in &self.diseq {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{x} ≠ {y}")?;
        }
        if first {
            write!(f, "⊤")?;
        }
        Ok(())
    }
}

/// A union of conjunctive queries with safe negation (UCQ¬).
///
/// With no rules this is the empty query; with negation-free rules it is
/// a plain UCQ and syntactically monotone.
#[derive(Clone, PartialEq, Eq)]
pub struct UcqQuery {
    arity: usize,
    rules: Vec<CqRule>,
}

impl UcqQuery {
    /// Build a UCQ¬ from rules of matching head arity.
    pub fn new(arity: usize, rules: Vec<CqRule>) -> Result<Self, EvalError> {
        for r in &rules {
            if r.head.len() != arity {
                return Err(EvalError::Unsafe {
                    reason: format!(
                        "rule head arity {} differs from query arity {arity}",
                        r.head.len()
                    ),
                });
            }
        }
        Ok(UcqQuery { arity, rules })
    }

    /// A single-rule conjunctive query.
    pub fn single(rule: CqRule) -> Self {
        UcqQuery {
            arity: rule.head.len(),
            rules: vec![rule],
        }
    }

    /// The rules.
    pub fn rules(&self) -> &[CqRule] {
        &self.rules
    }

    /// Add a rule (builder style).
    pub fn or_rule(mut self, rule: CqRule) -> Result<Self, EvalError> {
        if rule.head.len() != self.arity {
            return Err(EvalError::Unsafe {
                reason: "rule arity mismatch in union".into(),
            });
        }
        self.rules.push(rule);
        Ok(self)
    }
}

impl Query for UcqQuery {
    fn arity(&self) -> usize {
        self.arity
    }

    fn eval(&self, db: &Instance) -> Result<Relation, EvalError> {
        let mut out = Relation::empty(self.arity);
        for r in &self.rules {
            r.eval_into(db, &mut out)?;
        }
        // Enforce condition (i): answers are over the active domain. Head
        // constants are the only way a non-adom value can appear.
        let has_head_constants = self
            .rules
            .iter()
            .any(|r| r.head.iter().any(|t| matches!(t, Term::Const(_))));
        if has_head_constants {
            let adom = db.adom();
            let filtered: Vec<Tuple> = out
                .iter()
                .filter(|t| t.iter().all(|v| adom.contains(v)))
                .cloned()
                .collect();
            out = Relation::from_tuples(self.arity, filtered)?;
        }
        Ok(out)
    }

    fn is_monotone_syntactic(&self) -> bool {
        self.rules.iter().all(CqRule::is_positive)
    }

    fn referenced_relations(&self) -> BTreeSet<RelName> {
        self.rules.iter().flat_map(|r| r.relations()).collect()
    }

    fn is_always_empty(&self) -> bool {
        self.rules.is_empty()
    }

    fn describe(&self) -> String {
        format!("{self:?}")
    }
}

impl fmt::Debug for UcqQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rules.is_empty() {
            return write!(f, "∅/{}", self.arity);
        }
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                write!(f, "  ∪  ")?;
            }
            write!(f, "{r:?}")?;
        }
        Ok(())
    }
}

/// Ergonomic builder for a single CQ¬ rule.
#[derive(Clone, Debug, Default)]
pub struct CqBuilder {
    head: Vec<Term>,
    pos: Vec<Atom>,
    neg: Vec<Atom>,
    diseq: Vec<(Term, Term)>,
}

impl CqBuilder {
    /// Start a rule with the given head terms.
    pub fn head(terms: Vec<Term>) -> Self {
        CqBuilder {
            head: terms,
            ..Default::default()
        }
    }

    /// Add a positive atom.
    pub fn when(mut self, a: Atom) -> Self {
        self.pos.push(a);
        self
    }

    /// Add a negated atom.
    pub fn unless(mut self, a: Atom) -> Self {
        self.neg.push(a);
        self
    }

    /// Add a nonequality.
    pub fn distinct(mut self, a: Term, b: Term) -> Self {
        self.diseq.push((a, b));
        self
    }

    /// Finish, validating safety.
    pub fn build(self) -> Result<CqRule, EvalError> {
        CqRule::new(self.head, self.pos, self.neg, self.diseq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom;
    use rtx_relational::{fact, tuple, Schema};

    fn db() -> Instance {
        let sch = Schema::new().with("E", 2).with("S", 1);
        Instance::from_facts(sch, vec![fact!("E", 1, 2), fact!("E", 2, 3), fact!("S", 2)]).unwrap()
    }

    fn v(n: &str) -> Term {
        Term::var(n)
    }

    #[test]
    fn single_atom_cq() {
        let r = CqBuilder::head(vec![v("X")])
            .when(atom!("S"; @"X"))
            .build()
            .unwrap();
        let q = UcqQuery::single(r);
        let out = q.eval(&db()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![2]));
        assert!(q.is_monotone_syntactic());
    }

    #[test]
    fn join_two_atoms() {
        let r = CqBuilder::head(vec![v("X"), v("Z")])
            .when(atom!("E"; @"X", @"Y"))
            .when(atom!("E"; @"Y", @"Z"))
            .build()
            .unwrap();
        let out = UcqQuery::single(r).eval(&db()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![1, 3]));
    }

    #[test]
    fn negation_filters() {
        let r = CqBuilder::head(vec![v("X"), v("Y")])
            .when(atom!("E"; @"X", @"Y"))
            .unless(atom!("S"; @"X"))
            .build()
            .unwrap();
        let q = UcqQuery::single(r);
        let out = q.eval(&db()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![1, 2]));
        assert!(!q.is_monotone_syntactic());
    }

    #[test]
    fn nonequality_filters_but_stays_monotone() {
        let r = CqBuilder::head(vec![v("X"), v("Y")])
            .when(atom!("E"; @"X", @"Y"))
            .distinct(v("X"), Term::cons(1))
            .build()
            .unwrap();
        let q = UcqQuery::single(r);
        let out = q.eval(&db()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![2, 3]));
        assert!(q.is_monotone_syntactic());
    }

    #[test]
    fn union_of_rules() {
        let r1 = CqBuilder::head(vec![v("X")])
            .when(atom!("S"; @"X"))
            .build()
            .unwrap();
        let r2 = CqBuilder::head(vec![v("X")])
            .when(atom!("E"; @"X", @"Y"))
            .build()
            .unwrap();
        let q = UcqQuery::new(1, vec![r1, r2]).unwrap();
        let out = q.eval(&db()).unwrap();
        assert_eq!(out.len(), 2); // {2} ∪ {1,2}
    }

    #[test]
    fn safety_violations_rejected() {
        // head var not in positive body
        assert!(CqBuilder::head(vec![v("X")]).build().is_err());
        // negated var not positive-bound
        assert!(CqBuilder::head(vec![v("X")])
            .when(atom!("S"; @"X"))
            .unless(atom!("S"; @"Y"))
            .build()
            .is_err());
        // diseq var not positive-bound
        assert!(CqBuilder::head(vec![v("X")])
            .when(atom!("S"; @"X"))
            .distinct(v("Z"), Term::cons(1))
            .build()
            .is_err());
    }

    #[test]
    fn nullary_rule_with_empty_body_is_constant_true() {
        let r = CqRule::new(vec![], vec![], vec![], vec![]).unwrap();
        let q = UcqQuery::single(r);
        assert!(q.eval(&db()).unwrap().as_bool());
        assert_eq!(q.arity(), 0);
    }

    #[test]
    fn head_constants_filtered_by_adom() {
        let r = CqRule::new(vec![Term::cons(99)], vec![atom!("S"; @"X")], vec![], vec![]).unwrap();
        let q = UcqQuery::single(r);
        assert!(q.eval(&db()).unwrap().is_empty()); // 99 ∉ adom
        let r2 = CqRule::new(vec![Term::cons(1)], vec![atom!("S"; @"X")], vec![], vec![]).unwrap();
        let out = UcqQuery::single(r2).eval(&db()).unwrap();
        assert!(out.contains(&tuple![1])); // 1 ∈ adom
    }

    #[test]
    fn empty_union_is_always_empty() {
        let q = UcqQuery::new(2, vec![]).unwrap();
        assert!(q.is_always_empty());
        assert!(q.eval(&db()).unwrap().is_empty());
        assert!(q.is_monotone_syntactic()); // vacuously positive
    }

    #[test]
    fn arity_mismatch_in_union_rejected() {
        let r1 = CqBuilder::head(vec![v("X")])
            .when(atom!("S"; @"X"))
            .build()
            .unwrap();
        assert!(UcqQuery::new(2, vec![r1.clone()]).is_err());
        let q = UcqQuery::single(r1);
        let r2 = CqBuilder::head(vec![v("X"), v("Y")])
            .when(atom!("E"; @"X", @"Y"))
            .build()
            .unwrap();
        assert!(q.or_rule(r2).is_err());
    }

    #[test]
    fn repeated_variables_join_correctly() {
        let sch = Schema::new().with("E", 2);
        let db = Instance::from_facts(sch, vec![fact!("E", 1, 1), fact!("E", 1, 2)]).unwrap();
        let r = CqBuilder::head(vec![v("X")])
            .when(atom!("E"; @"X", @"X"))
            .build()
            .unwrap();
        let out = UcqQuery::single(r).eval(&db).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![1]));
    }

    #[test]
    fn ucq_monotonicity_semantic_spotcheck() {
        // adding facts only adds answers, for a UCQ with nonequalities
        let r = CqBuilder::head(vec![v("X"), v("Y")])
            .when(atom!("E"; @"X", @"Y"))
            .distinct(v("X"), v("Y"))
            .build()
            .unwrap();
        let q = UcqQuery::single(r);
        let small = db();
        let mut big = small.clone();
        big.insert_fact(fact!("E", 7, 8)).unwrap();
        let out_small = q.eval(&small).unwrap();
        let out_big = q.eval(&big).unwrap();
        assert!(out_small.is_subset(&out_big));
    }
}

//! Goal-directed evaluation: the magic-sets rewrite.
//!
//! [`Program::eval`] materializes the full IDB bottom-up, so a point
//! lookup (`T(a, ?)` on a large graph) pays for the whole transitive
//! closure. [`Program::for_query`] instead specializes the program to
//! the **bound pattern** of a query:
//!
//! * predicates are **adorned** with a `b`/`f` annotation per argument
//!   position, propagated through rule bodies left-to-right (the
//!   sideways-information-passing strategy: constants and variables
//!   bound by the head or by earlier positive atoms are `b`);
//! * every adorned IDB predicate `p^a` gets a **magic predicate**
//!   `M__p__a` holding the bound-argument tuples actually *demanded*
//!   during evaluation, seeded with the query's constants;
//! * each adorned rule is guarded by its head's magic predicate, and
//!   **magic rules** push demand down: for a body occurrence of `q^a'`
//!   the rule `M__q__a'(bound args) ← guard, preceding positive atoms`
//!   derives exactly the bindings `q` will be asked under;
//! * a **seed-import rule** `p^a(X…) ← M__p__a(bound X…), p(X…)` keeps
//!   exogenously seeded IDB facts (transducer memory between
//!   heartbeats) visible to the specialized program.
//!
//! The rewritten program is ordinary stratified Datalog: the planner,
//! the semi-naive loops, and [`MaintainedFixpoint`] consume it
//! unchanged, magic relations stay small-by-construction (the adaptive
//! engine keeps them in its `SmallTail` regime), and changing the
//! query's constants is just a ± delta on the magic seed
//! ([`MagicQuery::rebind`]).
//!
//! Negation is where rewrites go wrong, so this one is conservative:
//! negated IDB atoms are adorned all-bound with demand pushed from the
//! *full* positive prefix, and if the rewritten program is no longer
//! stratifiable — demand for a negated predicate can flow through the
//! very predicate it negates — the rewrite is rejected and the query
//! falls back to full materialization. Wrong answers are never an
//! outcome; at worst the fallback does the pre-rewrite amount of work.

use crate::datalog::{Literal, Program, Rule};
use crate::error::EvalError;
use crate::incremental::{FixpointStats, MaintainedFixpoint};
use crate::term::{Atom, Bindings, Term, Var};
use rtx_relational::{Fact, Instance, InstanceDelta, RelName, Relation, Tuple, Value};
use std::collections::BTreeSet;
use std::sync::OnceLock;

/// How [`Program::for_query`] answers a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueryMode {
    /// Evaluate the whole program bottom-up and filter the answers —
    /// the pre-rewrite behavior, and the fallback whenever the magic
    /// rewrite does not apply.
    Materialize,
    /// Rewrite the program to the query's binding pattern so only
    /// demand-reachable facts are derived (the default for bound
    /// patterns).
    #[default]
    Magic,
}

impl QueryMode {
    /// Parse a mode name (`"magic"`/`"on"` or `"materialize"`/`"off"`).
    pub fn parse(s: &str) -> Option<QueryMode> {
        match s.to_ascii_lowercase().as_str() {
            "magic" | "on" | "1" => Some(QueryMode::Magic),
            "materialize" | "off" | "full" | "0" => Some(QueryMode::Materialize),
            _ => None,
        }
    }

    /// The process-wide default mode: `RTX_QUERY_MAGIC` if set and
    /// valid, else [`QueryMode::Magic`]. Read once and cached.
    pub fn global() -> QueryMode {
        static MODE: OnceLock<QueryMode> = OnceLock::new();
        *MODE.get_or_init(|| {
            rtx_core::env::parse_choice("RTX_QUERY_MAGIC", "magic/on|materialize/off", Self::parse)
                .unwrap_or_default()
        })
    }
}

/// A program specialized to one query pattern — either the magic-sets
/// rewrite with its seed facts, or the original program under the
/// [`QueryMode::Materialize`] fallback. Built by [`Program::for_query`].
#[derive(Clone)]
pub struct MagicQuery {
    mode: QueryMode,
    program: Program,
    /// Magic seed facts encoding the pattern's constants (empty under
    /// `Materialize`).
    seeds: Vec<Fact>,
    /// The predicate holding the answers (the adorned query predicate
    /// under `Magic`, the original under `Materialize`).
    output: RelName,
    pattern: Atom,
}

impl Program {
    /// Specialize this program to a query `pattern` under the
    /// process-wide [`QueryMode::global`].
    ///
    /// The pattern is an [`Atom`] over a program predicate: constant
    /// positions are *bound* (the demand the rewrite specializes to),
    /// variable positions are *free*. Falls back to full
    /// materialization when the pattern is all-free, names an EDB
    /// predicate, or the rewrite fails (most importantly: when pushing
    /// demand through negation would make the program unstratifiable —
    /// a magic query never answers wrong, it answers slower).
    pub fn for_query(&self, pattern: &Atom) -> Result<MagicQuery, EvalError> {
        self.for_query_mode(pattern, QueryMode::global())
    }

    /// [`Program::for_query`] with an explicit mode — `Materialize` is
    /// the measurable baseline for the magic ablation, and tests force
    /// both sides regardless of `RTX_QUERY_MAGIC`.
    pub fn for_query_mode(&self, pattern: &Atom, mode: QueryMode) -> Result<MagicQuery, EvalError> {
        match self.signature().arity(&pattern.pred) {
            None => {
                return Err(EvalError::Other(format!(
                    "query pattern predicate `{}` is not mentioned by the program",
                    pattern.pred
                )))
            }
            Some(arity) if arity != pattern.arity() => {
                return Err(EvalError::Other(format!(
                    "query pattern for `{}` has arity {}, program declares {}",
                    pattern.pred,
                    pattern.arity(),
                    arity
                )))
            }
            Some(_) => {}
        }
        let has_bound = pattern.terms.iter().any(|t| matches!(t, Term::Const(_)));
        if mode == QueryMode::Magic && has_bound && self.idb_predicates().contains(&pattern.pred) {
            if let Ok((program, output, seeds)) = rewrite(self, pattern) {
                return Ok(MagicQuery {
                    mode: QueryMode::Magic,
                    program,
                    seeds,
                    output,
                    pattern: pattern.clone(),
                });
            }
        }
        Ok(MagicQuery {
            mode: QueryMode::Materialize,
            program: self.clone(),
            seeds: Vec::new(),
            output: pattern.pred.clone(),
            pattern: pattern.clone(),
        })
    }
}

impl MagicQuery {
    /// The mode actually in effect — [`QueryMode::Materialize`] when
    /// the rewrite fell back, whatever was requested.
    pub fn mode(&self) -> QueryMode {
        self.mode
    }

    /// Is this query answered through the magic rewrite?
    pub fn is_magic(&self) -> bool {
        self.mode == QueryMode::Magic
    }

    /// The program that will be evaluated (rewritten under `Magic`).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The predicate holding the (unfiltered) answers.
    pub fn output(&self) -> &RelName {
        &self.output
    }

    /// The query pattern this program was specialized to.
    pub fn pattern(&self) -> &Atom {
        &self.pattern
    }

    /// The magic seed facts (empty under `Materialize`).
    pub fn seed_facts(&self) -> &[Fact] {
        &self.seeds
    }

    /// `db` widened to the evaluation schema with the magic seeds
    /// inserted — what [`MagicQuery::answer`] evaluates over, and what
    /// a [`MaintainedFixpoint`] over [`MagicQuery::program`] should be
    /// initialized from.
    pub fn seeded_base(&self, db: &Instance) -> Result<Instance, EvalError> {
        let schema = db.schema().union_compatible(self.program.signature())?;
        let mut base = db.widen(schema)?;
        for f in &self.seeds {
            base.insert_fact(f.clone())?;
        }
        Ok(base)
    }

    /// Evaluate and return the answer tuples matching the pattern.
    pub fn answer(&self, db: &Instance) -> Result<Relation, EvalError> {
        Ok(self.answer_with_stats(db)?.0)
    }

    /// [`MagicQuery::answer`] plus the evaluation's per-stratum
    /// derivation counters — the evidence that magic derived only the
    /// demand-reachable facts.
    pub fn answer_with_stats(&self, db: &Instance) -> Result<(Relation, FixpointStats), EvalError> {
        let base = self.seeded_base(db)?;
        let (total, stats) = self.program.eval_with_stats(&base)?;
        Ok((self.answer_from(&total)?, stats))
    }

    /// Extract the answers from an already evaluated instance (e.g.
    /// the [`MaintainedFixpoint::current`] of a maintained magic
    /// query): the output relation filtered through the pattern's
    /// constants and repeated variables.
    pub fn answer_from(&self, total: &Instance) -> Result<Relation, EvalError> {
        let rel = total.relation(&self.output)?;
        let env = Bindings::new();
        let matching: Vec<Tuple> = rel
            .iter()
            .filter(|t| self.pattern.match_tuple(t, &env).is_some())
            .cloned()
            .collect();
        Ok(Relation::from_tuples_in(rel.mode(), rel.arity(), matching)?)
    }

    /// A [`MaintainedFixpoint`] over the (rewritten) program,
    /// initialized from `db` plus the magic seeds. Changing the
    /// query's constants afterwards is one [`MagicQuery::rebind`]
    /// delta, maintained in O(changed demand) instead of a fresh
    /// evaluation.
    pub fn maintained(&self, db: &Instance) -> Result<MaintainedFixpoint, EvalError> {
        let mut fix = MaintainedFixpoint::new(&self.program)?;
        fix.initialize(&self.seeded_base(db)?)?;
        Ok(fix)
    }

    /// Re-target the query at new constants with the **same binding
    /// shape** (bound/free positions must match — the rewritten
    /// program depends only on the shape). Returns the new query and
    /// the ± seed delta that moves a maintained fixpoint (or a seeded
    /// base) from the old binding to the new one.
    pub fn rebind(&self, pattern: &Atom) -> Result<(MagicQuery, InstanceDelta), EvalError> {
        let same_shape = pattern.pred == self.pattern.pred
            && pattern.arity() == self.pattern.arity()
            && pattern
                .terms
                .iter()
                .zip(&self.pattern.terms)
                .all(|(a, b)| matches!(a, Term::Const(_)) == matches!(b, Term::Const(_)));
        if !same_shape {
            return Err(EvalError::Other(format!(
                "rebind pattern {pattern} does not match the binding shape of {}; \
                 build a new query with Program::for_query",
                self.pattern
            )));
        }
        let mut next = self.clone();
        next.pattern = pattern.clone();
        if self.is_magic() {
            let magic_pred = self.seeds[0].rel().clone();
            next.seeds = vec![Fact::new(magic_pred, bound_values(pattern))];
        }
        let delta = InstanceDelta::from_parts(next.seeds.clone(), self.seeds.clone());
        rtx_obs::registry::add("magic.rebinds", 1);
        if rtx_obs::tracing() {
            rtx_obs::event!(
                "query",
                "magic.rebind",
                "seeds_added" => next.seeds.len(),
                "seeds_removed" => self.seeds.len(),
            );
        }
        Ok((next, delta))
    }
}

/// A binding pattern: `true` per bound (`b`) argument position.
type Adornment = Vec<bool>;

fn bf(ad: &Adornment) -> String {
    ad.iter().map(|b| if *b { 'b' } else { 'f' }).collect()
}

/// The constants at the pattern's bound positions, in position order.
fn bound_values(pattern: &Atom) -> Tuple {
    let vs: Vec<Value> = pattern
        .terms
        .iter()
        .filter_map(|t| match t {
            Term::Const(c) => Some(*c),
            Term::Var(_) => None,
        })
        .collect();
    Tuple::new(vs)
}

/// The terms at the adornment's bound positions, in position order.
fn bound_terms(terms: &[Term], ad: &Adornment) -> Vec<Term> {
    terms
        .iter()
        .zip(ad)
        .filter(|(_, b)| **b)
        .map(|(t, _)| t.clone())
        .collect()
}

struct Rewriter<'a> {
    program: &'a Program,
    queue: Vec<(RelName, Adornment)>,
    done: BTreeSet<(RelName, Adornment)>,
    rules: Vec<Rule>,
}

impl<'a> Rewriter<'a> {
    /// A generated predicate name, rejected if the source program
    /// already uses it (the rewrite must never shadow user relations).
    fn fresh(&self, name: String) -> Result<RelName, EvalError> {
        let rel: RelName = name.into();
        if self.program.signature().arity(&rel).is_some() {
            return Err(EvalError::Other(format!(
                "magic rewrite name `{rel}` collides with a program predicate"
            )));
        }
        Ok(rel)
    }

    fn adorned(&self, p: &RelName, ad: &Adornment) -> Result<RelName, EvalError> {
        self.fresh(format!("{p}__{}", bf(ad)))
    }

    fn magic(&self, p: &RelName, ad: &Adornment) -> Result<RelName, EvalError> {
        self.fresh(format!("M__{p}__{}", bf(ad)))
    }

    fn demand(&mut self, p: &RelName, ad: Adornment) {
        let key = (p.clone(), ad);
        if !self.done.contains(&key) && !self.queue.contains(&key) {
            self.queue.push(key);
        }
    }

    fn emit(&mut self, rule: Rule) {
        if !self.rules.contains(&rule) {
            self.rules.push(rule);
        }
    }

    /// Emit the seed-import rule and the adorned versions of every
    /// rule defining `p`, pushing newly demanded adornments onto the
    /// worklist.
    fn process(&mut self, p: &RelName, ad: &Adornment) -> Result<(), EvalError> {
        let arity = ad.len();
        let guard_of = |rw: &Self, head_terms: &[Term]| -> Result<Option<Atom>, EvalError> {
            if ad.iter().any(|b| *b) {
                Ok(Some(Atom::new(
                    rw.magic(p, ad)?,
                    bound_terms(head_terms, ad),
                )))
            } else {
                Ok(None)
            }
        };
        // Seed-import: exogenously seeded `p` facts stay visible under
        // the adornment (and `p` itself becomes EDB for the rewrite).
        let vars: Vec<Term> = (0..arity).map(|i| Term::var(format!("__Mv{i}"))).collect();
        let mut import_body = Vec::new();
        if let Some(g) = guard_of(self, &vars)? {
            import_body.push(Literal::Pos(g));
        }
        import_body.push(Literal::Pos(Atom::new(p.clone(), vars.clone())));
        self.emit(Rule::new(
            Atom::new(self.adorned(p, ad)?, vars),
            import_body,
        )?);

        let rules: Vec<Rule> = self
            .program
            .rules()
            .iter()
            .filter(|r| r.head().pred == *p)
            .cloned()
            .collect();
        for r in rules {
            let guard = guard_of(self, &r.head().terms)?;
            // Left-to-right SIPS over the positive atoms: a position is
            // bound if it is a constant or its variable was bound by
            // the head's `b` positions or any earlier positive atom.
            let mut bound: BTreeSet<Var> = r
                .head()
                .terms
                .iter()
                .zip(ad)
                .filter(|(_, b)| **b)
                .filter_map(|(t, _)| t.as_var().copied())
                .collect();
            let mut pos_prefix: Vec<Atom> = Vec::new();
            let mut magic_rules: Vec<Rule> = Vec::new();
            for l in r.body() {
                let Literal::Pos(a) = l else { continue };
                if self.program.idb_predicates().contains(&a.pred) {
                    let a_ad: Adornment = a
                        .terms
                        .iter()
                        .map(|t| match t {
                            Term::Const(_) => true,
                            Term::Var(v) => bound.contains(v),
                        })
                        .collect();
                    if a_ad.iter().any(|b| *b) {
                        // Magic rule: this occurrence is demanded under
                        // exactly the bindings the guard + the earlier
                        // positive atoms produce.
                        let m_head =
                            Atom::new(self.magic(&a.pred, &a_ad)?, bound_terms(&a.terms, &a_ad));
                        let mut m_body: Vec<Literal> = Vec::new();
                        if let Some(g) = &guard {
                            m_body.push(Literal::Pos(g.clone()));
                        }
                        m_body.extend(pos_prefix.iter().cloned().map(Literal::Pos));
                        magic_rules.push(Rule::new(m_head, m_body)?);
                    }
                    pos_prefix.push(Atom::new(self.adorned(&a.pred, &a_ad)?, a.terms.clone()));
                    self.demand(&a.pred, a_ad);
                } else {
                    pos_prefix.push(a.clone());
                }
                bound.extend(a.vars());
            }
            // Negated atoms and nonequalities are filters over fully
            // bound variables; moving them after the positive atoms is
            // semantically neutral. Negated IDB atoms are adorned
            // all-bound with demand from the full positive prefix —
            // the conservative choice that keeps the filter exact.
            let mut filters: Vec<Literal> = Vec::new();
            for l in r.body() {
                match l {
                    Literal::Pos(_) => {}
                    Literal::Neg(a) if self.program.idb_predicates().contains(&a.pred) => {
                        let a_ad: Adornment = vec![true; a.arity()];
                        let m_head = Atom::new(self.magic(&a.pred, &a_ad)?, a.terms.clone());
                        let mut m_body: Vec<Literal> = Vec::new();
                        if let Some(g) = &guard {
                            m_body.push(Literal::Pos(g.clone()));
                        }
                        m_body.extend(pos_prefix.iter().cloned().map(Literal::Pos));
                        magic_rules.push(Rule::new(m_head, m_body)?);
                        filters.push(Literal::Neg(Atom::new(
                            self.adorned(&a.pred, &a_ad)?,
                            a.terms.clone(),
                        )));
                        self.demand(&a.pred, a_ad);
                    }
                    Literal::Neg(_) | Literal::Diseq(_, _) => filters.push(l.clone()),
                }
            }
            let mut body: Vec<Literal> = Vec::new();
            if let Some(g) = guard {
                body.push(Literal::Pos(g));
            }
            body.extend(pos_prefix.into_iter().map(Literal::Pos));
            body.extend(filters);
            self.emit(Rule::new(
                Atom::new(self.adorned(p, ad)?, r.head().terms.clone()),
                body,
            )?);
            for m in magic_rules {
                self.emit(m);
            }
        }
        Ok(())
    }
}

/// The magic-sets rewrite of `program` for `pattern`. Returns the
/// rewritten program, its output predicate, and the magic seed facts;
/// errors (name collision, unstratifiable rewrite) make the caller
/// fall back to materialization.
fn rewrite(program: &Program, pattern: &Atom) -> Result<(Program, RelName, Vec<Fact>), EvalError> {
    let ad0: Adornment = pattern
        .terms
        .iter()
        .map(|t| matches!(t, Term::Const(_)))
        .collect();
    let mut rw = Rewriter {
        program,
        queue: vec![(pattern.pred.clone(), ad0.clone())],
        done: BTreeSet::new(),
        rules: Vec::new(),
    };
    while let Some((p, ad)) = rw.queue.pop() {
        if !rw.done.insert((p.clone(), ad.clone())) {
            continue;
        }
        rw.process(&p, &ad)?;
    }
    let output = rw.adorned(&pattern.pred, &ad0)?;
    let seed = Fact::new(rw.magic(&pattern.pred, &ad0)?, bound_values(pattern));
    let rewritten = Program::new(rw.rules)?;
    // Demand can flow through a negated predicate into itself; the
    // rewrite is rejected (→ Materialize) rather than answered wrong.
    rewritten.stratify()?;
    Ok((rewritten, output, vec![seed]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom;
    use crate::parser::parse_program;
    use rtx_relational::{fact, Schema};

    fn tc() -> Program {
        parse_program("t(X,Y) :- e(X,Y). t(X,Z) :- t(X,Y), e(Y,Z).").unwrap()
    }

    fn chain_db(n: i64) -> Instance {
        let sch = Schema::new().with("e", 2).with("t", 2);
        let mut db = Instance::empty(sch);
        for i in 0..n {
            db.insert_fact(fact!("e", i, i + 1)).unwrap();
        }
        db
    }

    #[test]
    fn bound_tc_lookup_matches_materialization() {
        let p = tc();
        let db = chain_db(30);
        let pattern = atom!("t"; 0, @"Y");
        let magic = p.for_query_mode(&pattern, QueryMode::Magic).unwrap();
        let full = p.for_query_mode(&pattern, QueryMode::Materialize).unwrap();
        assert!(magic.is_magic());
        assert!(!full.is_magic());
        let (ma, ms) = magic.answer_with_stats(&db).unwrap();
        let (fa, fs) = full.answer_with_stats(&db).unwrap();
        assert_eq!(ma, fa);
        assert_eq!(ma.len(), 30);
        // Demand-reachable only: O(n) facts instead of O(n²).
        assert!(
            ms.eval_derived() < fs.eval_derived() / 4,
            "magic {} vs full {}",
            ms.eval_derived(),
            fs.eval_derived()
        );
    }

    #[test]
    fn all_free_pattern_falls_back() {
        let q = tc().for_query(&atom!("t"; @"X", @"Y")).unwrap();
        assert!(!q.is_magic());
        assert_eq!(q.answer(&chain_db(4)).unwrap().len(), 10);
    }

    #[test]
    fn edb_pattern_is_a_filter() {
        let q = tc()
            .for_query_mode(&atom!("e"; 1, @"Y"), QueryMode::Magic)
            .unwrap();
        assert!(!q.is_magic());
        let ans = q.answer(&chain_db(4)).unwrap();
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&rtx_relational::tuple![1, 2]));
    }

    #[test]
    fn repeated_pattern_variables_filter_answers() {
        // T(X,X) on a cycle: only the loop pairs survive the filter.
        let p = tc();
        let sch = Schema::new().with("e", 2).with("t", 2);
        let mut db = Instance::empty(sch);
        for (a, b) in [(1, 2), (2, 1), (2, 3)] {
            db.insert_fact(fact!("e", a, b)).unwrap();
        }
        let q = p.for_query(&atom!("t"; @"X", @"X")).unwrap();
        let ans = q.answer(&db).unwrap();
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&rtx_relational::tuple![1, 1]));
        assert!(ans.contains(&rtx_relational::tuple![2, 2]));
    }

    #[test]
    fn seeded_idb_facts_survive_the_rewrite() {
        let p = tc();
        let mut db = chain_db(3);
        db.insert_fact(fact!("t", 0, 99)).unwrap();
        let q = p
            .for_query_mode(&atom!("t"; 0, @"Y"), QueryMode::Magic)
            .unwrap();
        assert!(q.is_magic());
        let ans = q.answer(&db).unwrap();
        assert!(ans.contains(&rtx_relational::tuple![0, 99]));
        assert_eq!(ans.len(), 4); // 1..3 plus the seed
    }

    #[test]
    fn rebind_swaps_the_seed() {
        let p = tc();
        let q = p
            .for_query_mode(&atom!("t"; 1, @"Y"), QueryMode::Magic)
            .unwrap();
        let (q2, delta) = q.rebind(&atom!("t"; 2, @"Y")).unwrap();
        assert_eq!(delta.added().len(), 1);
        assert_eq!(delta.removed().len(), 1);
        let db = chain_db(5);
        assert_eq!(q2.answer(&db).unwrap().len(), 3);
        // Different shape is rejected.
        assert!(q.rebind(&atom!("t"; @"X", 2)).is_err());
        assert!(q.rebind(&atom!("e"; 1, @"Y")).is_err());
    }

    #[test]
    fn unknown_pattern_predicate_is_an_error() {
        assert!(tc().for_query(&atom!("z"; 0)).is_err());
        assert!(tc().for_query(&atom!("t"; 0)).is_err()); // arity
    }

    #[test]
    fn name_collisions_fall_back() {
        // The user already has a `T__bf` relation: rewrite must bail.
        let p =
            parse_program("t(X,Y) :- e(X,Y). t(X,Z) :- t(X,Y), e(Y,Z). s(X) :- t__bf(X).").unwrap();
        let q = p
            .for_query_mode(&atom!("t"; 0, @"Y"), QueryMode::Magic)
            .unwrap();
        assert!(!q.is_magic());
    }

    #[test]
    fn unstratifiable_rewrite_is_rejected_not_answered_wrong() {
        // Stratified as written (Q below P), but pushing demand for
        // ¬Q(Y) through P's recursion makes M__Q depend positively on
        // P__b while P__b negates Q__b — a cycle through negation.
        let p = parse_program(
            "p(X) :- e(X,Y), p(Y), !q(Y).
             p(X) :- s(X).
             q(X) :- g(X).",
        )
        .unwrap();
        assert!(p.stratify().is_ok());
        let q = p.for_query_mode(&atom!("p"; 1), QueryMode::Magic).unwrap();
        assert!(!q.is_magic(), "unstratifiable rewrite must fall back");
        let sch = Schema::new()
            .with("e", 2)
            .with("s", 1)
            .with("g", 1)
            .with("p", 1)
            .with("q", 1);
        let mut db = Instance::empty(sch);
        for f in [fact!("e", 1, 2), fact!("s", 2), fact!("g", 3)] {
            db.insert_fact(f).unwrap();
        }
        let ans = q.answer(&db).unwrap();
        assert!(ans.contains(&rtx_relational::tuple![1]));
    }

    #[test]
    fn negation_against_lower_strata_stays_magic() {
        // Demand for ¬b flows through a's (positive, lower-stratum)
        // recursion and never loops back into b: the rewrite stays
        // stratified and exact.
        let p = parse_program(
            "a(X,Y) :- e(X,Y).
             a(X,Z) :- a(X,Y), e(Y,Z).
             w(X,Y) :- a(X,Y), !b(Y).
             b(X) :- g(X).",
        )
        .unwrap();
        let q = p
            .for_query_mode(&atom!("w"; @"X", @"Y"), QueryMode::Magic)
            .unwrap();
        assert!(!q.is_magic(), "all-free pattern falls back");
        let qb = p
            .for_query_mode(&atom!("w"; 1, @"Y"), QueryMode::Magic)
            .unwrap();
        assert!(qb.is_magic());
        let sch = Schema::new()
            .with("e", 2)
            .with("g", 1)
            .with("a", 2)
            .with("w", 2)
            .with("b", 1);
        let mut db = Instance::empty(sch);
        for f in [
            fact!("e", 1, 2),
            fact!("e", 2, 3),
            fact!("e", 3, 4),
            fact!("g", 3),
        ] {
            db.insert_fact(f.clone()).unwrap();
        }
        let full = p
            .for_query_mode(&atom!("w"; 1, @"Y"), QueryMode::Materialize)
            .unwrap();
        let ans = qb.answer(&db).unwrap();
        assert_eq!(ans, full.answer(&db).unwrap());
        assert_eq!(ans.len(), 2); // w(1,2) and w(1,4); 3 is blocked by b
    }

    #[test]
    fn query_mode_parses() {
        assert_eq!(QueryMode::parse("magic"), Some(QueryMode::Magic));
        assert_eq!(QueryMode::parse("ON"), Some(QueryMode::Magic));
        assert_eq!(QueryMode::parse("off"), Some(QueryMode::Materialize));
        assert_eq!(
            QueryMode::parse("materialize"),
            Some(QueryMode::Materialize)
        );
        assert_eq!(QueryMode::parse("bogus"), None);
    }
}

//! Text parsers for Datalog programs and FO formulas.
//!
//! Conventions (classical Datalog style):
//! * variables start with an uppercase letter or `_`;
//! * constants are integers, `'quoted symbols'`, or lowercase identifiers;
//! * relation names are identifiers as written;
//! * Datalog rules end with `.`, negation is `!`, nonequality `!=`;
//! * FO connectives: `&`, `|`, `!`, `exists X, Y . φ`, `forall X . φ`,
//!   `=`, `!=`, `true`, `false`.
//!
//! ```
//! use rtx_query::parser::{parse_program, parse_fo_query};
//! let p = parse_program("t(X,Y) :- e(X,Y). t(X,Z) :- t(X,Y), e(Y,Z).").unwrap();
//! assert_eq!(p.rules().len(), 2);
//! let q = parse_fo_query("(X) <- s(X) & !exists Y . e(X,Y)").unwrap();
//! assert_eq!(rtx_query::Query::arity(&q), 1);
//! ```

use crate::datalog::{Literal, Program, Rule};
use crate::error::EvalError;
use crate::fo::{FoQuery, Formula};
use crate::term::{Atom, Term, Var};
use rtx_relational::Value;

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Quoted(String),
    LParen,
    RParen,
    Comma,
    Dot,
    ColonDash,
    Arrow,
    Bang,
    Neq,
    Eq,
    Amp,
    Pipe,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> EvalError {
        EvalError::Parse {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn tokens(mut self) -> Result<Vec<(Tok, usize)>, EvalError> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let start = self.pos;
            let c = self.src[self.pos];
            match c {
                b' ' | b'\t' | b'\n' | b'\r' => {
                    self.pos += 1;
                }
                b'%' | b'#' => {
                    // comment to end of line
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'(' => {
                    out.push((Tok::LParen, start));
                    self.pos += 1;
                }
                b')' => {
                    out.push((Tok::RParen, start));
                    self.pos += 1;
                }
                b',' => {
                    out.push((Tok::Comma, start));
                    self.pos += 1;
                }
                b'.' => {
                    out.push((Tok::Dot, start));
                    self.pos += 1;
                }
                b'&' => {
                    out.push((Tok::Amp, start));
                    self.pos += 1;
                }
                b'|' => {
                    out.push((Tok::Pipe, start));
                    self.pos += 1;
                }
                b'=' => {
                    out.push((Tok::Eq, start));
                    self.pos += 1;
                }
                b'!' => {
                    if self.src.get(self.pos + 1) == Some(&b'=') {
                        out.push((Tok::Neq, start));
                        self.pos += 2;
                    } else {
                        out.push((Tok::Bang, start));
                        self.pos += 1;
                    }
                }
                b':' => {
                    if self.src.get(self.pos + 1) == Some(&b'-') {
                        out.push((Tok::ColonDash, start));
                        self.pos += 2;
                    } else {
                        return Err(self.error("expected `:-`"));
                    }
                }
                b'<' => {
                    if self.src.get(self.pos + 1) == Some(&b'-') {
                        out.push((Tok::Arrow, start));
                        self.pos += 2;
                    } else {
                        return Err(self.error("expected `<-`"));
                    }
                }
                b'\'' => {
                    self.pos += 1;
                    let s = self.pos;
                    while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                        self.pos += 1;
                    }
                    if self.pos >= self.src.len() {
                        return Err(self.error("unterminated quoted symbol"));
                    }
                    let text = std::str::from_utf8(&self.src[s..self.pos])
                        .map_err(|_| self.error("invalid UTF-8 in quoted symbol"))?
                        .to_string();
                    self.pos += 1;
                    out.push((Tok::Quoted(text), start));
                }
                b'-' | b'0'..=b'9' => {
                    let s = self.pos;
                    self.pos += 1;
                    while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                        self.pos += 1;
                    }
                    let text = std::str::from_utf8(&self.src[s..self.pos]).unwrap();
                    let n: i64 = text
                        .parse()
                        .map_err(|_| self.error(format!("bad integer `{text}`")))?;
                    out.push((Tok::Int(n), start));
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let s = self.pos;
                    while self.pos < self.src.len()
                        && (self.src[self.pos].is_ascii_alphanumeric()
                            || self.src[self.pos] == b'_')
                    {
                        self.pos += 1;
                    }
                    let text = std::str::from_utf8(&self.src[s..self.pos])
                        .unwrap()
                        .to_string();
                    out.push((Tok::Ident(text), start));
                }
                other => {
                    return Err(self.error(format!("unexpected character `{}`", other as char)))
                }
            }
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, EvalError> {
        Ok(Parser {
            toks: Lexer::new(src).tokens()?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|&(_, o)| o)
            .unwrap_or(usize::MAX)
    }

    fn error(&self, message: impl Into<String>) -> EvalError {
        EvalError::Parse {
            message: message.into(),
            offset: self.offset(),
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: Tok) -> Result<(), EvalError> {
        match self.next() {
            Some(got) if got == t => Ok(()),
            Some(got) => Err(self.error(format!("expected {t:?}, found {got:?}"))),
            None => Err(self.error(format!("expected {t:?}, found end of input"))),
        }
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Is the identifier a variable (uppercase or `_` start)?
    fn is_var(name: &str) -> bool {
        name.starts_with(|c: char| c.is_ascii_uppercase() || c == '_')
    }

    fn term_from_ident(name: String) -> Term {
        if Self::is_var(&name) {
            Term::var(name)
        } else {
            Term::cons(Value::sym(name))
        }
    }

    fn parse_term(&mut self) -> Result<Term, EvalError> {
        match self.next() {
            Some(Tok::Ident(name)) => Ok(Self::term_from_ident(name)),
            Some(Tok::Int(n)) => Ok(Term::cons(n)),
            Some(Tok::Quoted(s)) => Ok(Term::cons(Value::sym(s))),
            other => Err(self.error(format!("expected a term, found {other:?}"))),
        }
    }

    /// `name(t1, …, tk)` or bare `name` (nullary).
    fn parse_atom(&mut self, name: String) -> Result<Atom, EvalError> {
        let mut terms = Vec::new();
        if self.eat(&Tok::LParen) && !self.eat(&Tok::RParen) {
            loop {
                terms.push(self.parse_term()?);
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(Tok::Comma)?;
            }
        }
        Ok(Atom::new(name, terms))
    }

    // ---- Datalog ----

    fn parse_rule(&mut self) -> Result<Rule, EvalError> {
        let head_name = match self.next() {
            Some(Tok::Ident(n)) => n,
            other => return Err(self.error(format!("expected rule head, found {other:?}"))),
        };
        let head = self.parse_atom(head_name)?;
        let mut body = Vec::new();
        if self.eat(&Tok::ColonDash) {
            loop {
                body.push(self.parse_literal()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::Dot)?;
        Rule::new(head, body)
    }

    fn parse_literal(&mut self) -> Result<Literal, EvalError> {
        if self.eat(&Tok::Bang) {
            let name = match self.next() {
                Some(Tok::Ident(n)) => n,
                other => {
                    return Err(self.error(format!("expected atom after `!`, found {other:?}")))
                }
            };
            return Ok(Literal::Neg(self.parse_atom(name)?));
        }
        // an atom, or `term != term`
        let start = self.pos;
        match self.next() {
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    Ok(Literal::Pos(self.parse_atom(name)?))
                } else if self.eat(&Tok::Neq) {
                    let rhs = self.parse_term()?;
                    Ok(Literal::Diseq(Self::term_from_ident(name), rhs))
                } else {
                    // nullary atom
                    Ok(Literal::Pos(Atom::new(name, vec![])))
                }
            }
            Some(Tok::Int(n)) => {
                self.expect(Tok::Neq)?;
                let rhs = self.parse_term()?;
                Ok(Literal::Diseq(Term::cons(n), rhs))
            }
            Some(Tok::Quoted(s)) => {
                self.expect(Tok::Neq)?;
                let rhs = self.parse_term()?;
                Ok(Literal::Diseq(Term::cons(Value::sym(s)), rhs))
            }
            other => {
                self.pos = start;
                Err(self.error(format!("expected a body literal, found {other:?}")))
            }
        }
    }

    // ---- FO ----

    fn parse_formula(&mut self) -> Result<Formula, EvalError> {
        self.parse_disjunction()
    }

    fn parse_disjunction(&mut self) -> Result<Formula, EvalError> {
        let mut parts = vec![self.parse_conjunction()?];
        while self.eat(&Tok::Pipe) {
            parts.push(self.parse_conjunction()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Formula::Or(parts)
        })
    }

    fn parse_conjunction(&mut self) -> Result<Formula, EvalError> {
        let mut parts = vec![self.parse_unary()?];
        while self.eat(&Tok::Amp) {
            parts.push(self.parse_unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Formula::And(parts)
        })
    }

    fn parse_unary(&mut self) -> Result<Formula, EvalError> {
        if self.eat(&Tok::Bang) {
            return Ok(Formula::not(self.parse_unary()?));
        }
        match self.peek() {
            Some(Tok::Ident(kw)) if kw == "exists" || kw == "forall" => {
                let universal = kw == "forall";
                self.next();
                let mut vars: Vec<Var> = Vec::new();
                loop {
                    match self.next() {
                        Some(Tok::Ident(v)) if Self::is_var(&v) => vars.push(Var::new(v)),
                        other => {
                            return Err(self
                                .error(format!("expected quantified variable, found {other:?}")))
                        }
                    }
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::Dot)?;
                let body = self.parse_formula()?;
                Ok(if universal {
                    Formula::Forall(vars, Box::new(body))
                } else {
                    Formula::Exists(vars, Box::new(body))
                })
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Formula, EvalError> {
        if self.eat(&Tok::LParen) {
            let f = self.parse_formula()?;
            self.expect(Tok::RParen)?;
            return Ok(f);
        }
        match self.next() {
            Some(Tok::Ident(name)) if name == "true" => Ok(Formula::True),
            Some(Tok::Ident(name)) if name == "false" => Ok(Formula::False),
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    Ok(Formula::Atom(self.parse_atom(name)?))
                } else if self.eat(&Tok::Eq) {
                    let rhs = self.parse_term()?;
                    Ok(Formula::Eq(Self::term_from_ident(name), rhs))
                } else if self.eat(&Tok::Neq) {
                    let rhs = self.parse_term()?;
                    Ok(Formula::neq(Self::term_from_ident(name), rhs))
                } else {
                    Ok(Formula::Atom(Atom::new(name, vec![]))) // nullary atom
                }
            }
            Some(Tok::Int(n)) => {
                let lhs = Term::cons(n);
                if self.eat(&Tok::Eq) {
                    Ok(Formula::Eq(lhs, self.parse_term()?))
                } else {
                    self.expect(Tok::Neq)?;
                    Ok(Formula::neq(lhs, self.parse_term()?))
                }
            }
            Some(Tok::Quoted(s)) => {
                let lhs = Term::cons(Value::sym(s));
                if self.eat(&Tok::Eq) {
                    Ok(Formula::Eq(lhs, self.parse_term()?))
                } else {
                    self.expect(Tok::Neq)?;
                    Ok(Formula::neq(lhs, self.parse_term()?))
                }
            }
            other => Err(self.error(format!("expected a formula, found {other:?}"))),
        }
    }
}

/// Parse a Datalog program: a sequence of `head :- body.` rules.
pub fn parse_program(src: &str) -> Result<Program, EvalError> {
    let mut p = Parser::new(src)?;
    let mut rules = Vec::new();
    while !p.at_end() {
        rules.push(p.parse_rule()?);
    }
    Program::new(rules)
}

/// Parse a bare FO formula.
pub fn parse_formula(src: &str) -> Result<Formula, EvalError> {
    let mut p = Parser::new(src)?;
    let f = p.parse_formula()?;
    if !p.at_end() {
        return Err(p.error("trailing input after formula"));
    }
    Ok(f)
}

/// Parse an FO query of the form `(X, Y) <- formula`.
pub fn parse_fo_query(src: &str) -> Result<FoQuery, EvalError> {
    let mut p = Parser::new(src)?;
    p.expect(Tok::LParen)?;
    let mut head: Vec<Var> = Vec::new();
    if !p.eat(&Tok::RParen) {
        loop {
            match p.next() {
                Some(Tok::Ident(v)) if Parser::is_var(&v) => head.push(Var::new(v)),
                other => return Err(p.error(format!("expected head variable, found {other:?}"))),
            }
            if p.eat(&Tok::RParen) {
                break;
            }
            p.expect(Tok::Comma)?;
        }
    }
    p.expect(Tok::Arrow)?;
    let f = p.parse_formula()?;
    if !p.at_end() {
        return Err(p.error("trailing input after query"));
    }
    FoQuery::new(head, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use rtx_relational::{fact, tuple, Instance, Schema};

    fn db() -> Instance {
        let sch = Schema::new().with("e", 2).with("s", 1);
        Instance::from_facts(sch, vec![fact!("e", 1, 2), fact!("e", 2, 3), fact!("s", 2)]).unwrap()
    }

    #[test]
    fn parse_tc_program_and_eval() {
        let p = parse_program(
            "t(X,Y) :- e(X,Y).\n\
             t(X,Z) :- t(X,Y), e(Y,Z).",
        )
        .unwrap();
        assert_eq!(p.rules().len(), 2);
        let q = crate::datalog::DatalogQuery::new(p, "t").unwrap();
        let out = q.eval(&db()).unwrap();
        assert!(out.contains(&tuple![1, 3]));
    }

    #[test]
    fn parse_negation_and_diseq() {
        let p = parse_program("p(X,Y) :- e(X,Y), !s(X), X != Y.").unwrap();
        let r = &p.rules()[0];
        assert!(r.has_negation());
        let q = crate::datalog::DatalogQuery::new(p, "p").unwrap();
        let out = q.eval(&db()).unwrap();
        assert_eq!(out.len(), 1); // only (1,2): 2 is in s
        assert!(out.contains(&tuple![1, 2]));
    }

    #[test]
    fn parse_constants_and_nullary() {
        let p = parse_program("hit :- e(1, X). tagged(X) :- e(X, 'two').").unwrap();
        assert_eq!(p.rules().len(), 2);
        assert_eq!(p.signature().arity(&"hit".into()), Some(0));
    }

    #[test]
    fn lowercase_idents_in_term_position_are_constants() {
        let p = parse_program("q(X) :- lab(X, red).").unwrap();
        let sch = Schema::new().with("lab", 2);
        let dbx = Instance::from_facts(sch, vec![fact!("lab", 1, "red"), fact!("lab", 2, "blue")])
            .unwrap();
        let q = crate::datalog::DatalogQuery::new(p, "q").unwrap();
        let out = q.eval(&dbx).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![1]));
    }

    #[test]
    fn comments_are_skipped() {
        let p = parse_program(
            "% transitive closure\n\
             t(X,Y) :- e(X,Y). # copy\n",
        )
        .unwrap();
        assert_eq!(p.rules().len(), 1);
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = parse_program("t(X,Y :- e(X,Y).").unwrap_err();
        assert!(matches!(err, EvalError::Parse { .. }));
        let err = parse_program("t(X) :- e(X,Y)").unwrap_err(); // missing dot
        assert!(matches!(err, EvalError::Parse { .. }));
    }

    #[test]
    fn unsafe_rule_surfaces_as_unsafe() {
        let err = parse_program("t(X) :- !e(X,X).").unwrap_err();
        assert!(matches!(err, EvalError::Unsafe { .. }));
    }

    #[test]
    fn parse_fo_and_eval() {
        let q = parse_fo_query("(X, Z) <- exists Y . e(X,Y) & e(Y,Z)").unwrap();
        let out = q.eval(&db()).unwrap();
        assert!(out.contains(&tuple![1, 3]));
    }

    #[test]
    fn parse_fo_sentence() {
        let q = parse_fo_query("() <- !exists X . s(X)").unwrap();
        assert_eq!(q.arity(), 0);
        assert!(!q.eval(&db()).unwrap().as_bool());
    }

    #[test]
    fn fo_precedence_and_parens() {
        // & binds tighter than |
        let f = parse_formula("s(X) & e(X,Y) | e(Y,X)").unwrap();
        match f {
            Formula::Or(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected Or, got {other:?}"),
        }
        let g = parse_formula("s(X) & (e(X,Y) | e(Y,X))").unwrap();
        match g {
            Formula::And(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn fo_forall_and_implication_encoding() {
        let q = parse_fo_query("() <- forall X . !s(X) | exists Y . e(X,Y)").unwrap();
        assert!(q.eval(&db()).unwrap().as_bool());
    }

    #[test]
    fn fo_equalities() {
        let q = parse_fo_query("(X, Y) <- e(X,Y) & X = Y").unwrap();
        assert!(q.eval(&db()).unwrap().is_empty());
        let q2 = parse_fo_query("(X) <- s(X) & X != 2").unwrap();
        assert!(q2.eval(&db()).unwrap().is_empty());
    }

    #[test]
    fn fo_free_var_validation_via_parser() {
        assert!(matches!(
            parse_fo_query("(X) <- e(X,Y)"),
            Err(EvalError::Unsafe { .. })
        ));
    }

    #[test]
    fn fo_trailing_garbage_rejected() {
        assert!(parse_fo_query("(X) <- s(X) s(X)").is_err());
        assert!(parse_formula("s(X) extra").is_err());
    }

    #[test]
    fn nullary_atoms_in_fo() {
        let f = parse_formula("ready & !done").unwrap();
        let rels = f.relations();
        assert!(rels.contains(&"ready".into()));
        assert!(rels.contains(&"done".into()));
    }

    #[test]
    fn quoted_symbols_lex() {
        let p = parse_program("q(X) :- lab(X, 'hello world').").unwrap();
        assert_eq!(p.rules().len(), 1);
        assert!(parse_program("q(X) :- lab(X, 'unterminated.").is_err());
    }

    #[test]
    fn negative_integers() {
        let p = parse_program("q(X) :- v(X, -5).").unwrap();
        assert_eq!(p.rules().len(), 1);
    }
}

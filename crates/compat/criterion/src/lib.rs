//! # criterion (offline stand-in)
//!
//! This workspace builds with no network access, so this crate vendors
//! the small slice of the `criterion` API its benches use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `sample_size` /
//! `bench_function` / `bench_with_input` / `finish`, [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! It is a *timer*, not a statistics engine: each benchmark runs
//! [`WARMUP_ITERS`] untimed warm-up iterations (cold caches and lazy
//! initialization settle before measurement), is then timed over
//! `sample_size` batched samples, and the mean/median/min per-iteration
//! wall time is printed. The **median** and the **median absolute
//! deviation** (MAD) are recorded alongside mean/min because the
//! committed baselines come from a 1-core container where scheduler
//! noise produces heavy outliers — the median is robust to them where
//! the mean is not, and the MAD says how noisy a record is. Good
//! enough to compare hot paths across commits; swap in the real
//! criterion when the registry is reachable.
//!
//! ## Adaptive sample calibration
//!
//! `sample_size` is a *minimum*, not the sample count: after taking it,
//! the [`Bencher`] keeps sampling (in half-`sample_size` batches) until
//! the median stabilizes — the MAD falls within
//! [`Calibration::mad_pct`] percent of the median — or a wall-clock
//! budget / hard sample cap is hit. The chosen sample count is recorded
//! in the JSON as `iters` together with a `calibrated` flag (`1` when
//! the MAD stabilized, `0` when the budget cut sampling short, so noisy
//! records are distinguishable in the baseline). Overrides:
//! `RTX_BENCH_CALIBRATE=off` pins the fixed-`sample_size` behavior,
//! `RTX_BENCH_MAD_PCT` changes the stability target (default 5),
//! `RTX_BENCH_BUDGET_MS` the per-benchmark extra-sampling budget
//! (default 200).
//!
//! When the `RTX_BENCH_JSON` environment variable names a file, every
//! bench binary additionally appends its results there as a JSON array
//! of `{name, iters, calibrated, mean_ns, min_ns, median_ns, mad_ns}`
//! records (see [`flush_json`]), so successive `cargo bench` targets
//! build up one machine-readable baseline — the repo's
//! `BENCH_baseline.json`.

#![warn(missing_docs)]

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Untimed iterations run before sampling starts.
pub const WARMUP_ITERS: usize = 3;

/// Hard cap on adaptive sampling, as a multiple of the configured
/// `sample_size`.
pub const CALIBRATION_MAX_FACTOR: usize = 8;

/// One finished benchmark, in the shape serialized to
/// `RTX_BENCH_JSON`.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full benchmark label (`group/function/param`).
    pub name: String,
    /// Number of timed samples (the adaptively chosen count).
    pub iters: usize,
    /// Did the MAD stabilize before the calibration budget ran out?
    /// Always `true` when calibration is disabled (the fixed count is
    /// what was asked for).
    pub calibrated: bool,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: u128,
    /// Minimum wall time per iteration, nanoseconds.
    pub min_ns: u128,
    /// Median wall time per iteration, nanoseconds (robust to the
    /// 1-core container's scheduling outliers).
    pub median_ns: u128,
    /// Median absolute deviation, nanoseconds (robust spread).
    pub mad_ns: u128,
}

/// Adaptive sample-count calibration parameters (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Calibration {
    /// Stop once `mad * 100 <= median * mad_pct`.
    pub mad_pct: u32,
    /// Stop once this much wall clock has been spent sampling.
    pub budget: Duration,
}

impl Calibration {
    /// The environment-resolved calibration: `None` when
    /// `RTX_BENCH_CALIBRATE` is `off`/`0`/`false`, else the defaults
    /// with `RTX_BENCH_MAD_PCT` / `RTX_BENCH_BUDGET_MS` applied.
    pub fn auto() -> Option<Calibration> {
        let enabled =
            rtx_core::env::parse_choice("RTX_BENCH_CALIBRATE", "\"on\" or \"off\"", |s| {
                match s.to_ascii_lowercase().as_str() {
                    "on" | "1" | "true" => Some(true),
                    "off" | "0" | "false" => Some(false),
                    _ => None,
                }
            })
            .unwrap_or(true);
        enabled.then(|| Calibration {
            mad_pct: rtx_core::env::parse_u64("RTX_BENCH_MAD_PCT").unwrap_or(5) as u32,
            budget: Duration::from_millis(
                rtx_core::env::parse_u64("RTX_BENCH_BUDGET_MS").unwrap_or(200),
            ),
        })
    }
}

/// Has the median stabilized — is the MAD within `mad_pct` percent of
/// the median?
pub fn mad_stable(samples: &[Duration], mad_pct: u32) -> bool {
    let (median, mad) = median_mad(samples);
    mad * 100 <= median * mad_pct
}

static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

fn record(rec: BenchRecord) {
    RESULTS.lock().unwrap_or_else(|e| e.into_inner()).push(rec);
}

/// Append this process's recorded results to the file named by
/// `RTX_BENCH_JSON` (no-op when unset). Called by [`criterion_main!`]
/// after all groups finish.
///
/// The file is a JSON array; an existing array written by a previous
/// bench binary in the same `cargo bench` run is extended in place, so
/// delete the file first to start a fresh baseline.
pub fn flush_json() {
    let Some(path) = rtx_core::env::raw("RTX_BENCH_JSON") else {
        return;
    };
    let results = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
    if results.is_empty() {
        return;
    }
    let mut entries = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "  {{\"name\": \"{}\", \"iters\": {}, \"calibrated\": {}, \"mean_ns\": {}, \"min_ns\": {}, \"median_ns\": {}, \"mad_ns\": {}}}",
            r.name.replace('\\', "\\\\").replace('"', "\\\""),
            r.iters,
            u8::from(r.calibrated),
            r.mean_ns,
            r.min_ns,
            r.median_ns,
            r.mad_ns
        ));
    }
    let body = match std::fs::read_to_string(&path) {
        Ok(prev) => {
            // Extend the array written by an earlier bench binary.
            let trimmed = prev.trim_end();
            match trimmed.strip_suffix(']') {
                Some(head) if trimmed.starts_with('[') => {
                    let head = head.trim_end();
                    if head == "[" {
                        format!("[\n{entries}\n]\n")
                    } else {
                        format!("{head},\n{entries}\n]\n")
                    }
                }
                _ => format!("[\n{entries}\n]\n"),
            }
        }
        Err(_) => format!("[\n{entries}\n]\n"),
    };
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("warning: could not write RTX_BENCH_JSON={path}: {e}");
    }
}

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirror of criterion's CLI hookup; accepts and ignores the
    /// harness arguments (`--bench`, filters) that cargo passes.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 10,
        }
    }

    /// Run a stand-alone benchmark (outside any group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().to_string(), 10, f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under the given id.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// End the group (prints nothing extra; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: Option<String>,
}

impl BenchmarkId {
    /// Id for `name` at parameter value `param`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: Some(param.to_string()),
        }
    }

    /// Id distinguished only by a parameter value.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            param: Some(param.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.param {
            Some(p) if self.name.is_empty() => write!(f, "{p}"),
            Some(p) => write!(f, "{}/{p}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
            param: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            name: s,
            param: None,
        }
    }
}

/// Times the closure handed to it by a benchmark function.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
    calibrated: bool,
}

impl Bencher {
    /// Time `routine` after [`WARMUP_ITERS`] untimed warm-up calls:
    /// `sample_size` samples minimum, then adaptively more until the
    /// median's MAD stabilizes or the calibration budget is spent (see
    /// the module docs and [`Calibration::auto`]).
    pub fn iter<O, R: FnMut() -> O>(&mut self, routine: R) {
        self.iter_with(Calibration::auto(), routine)
    }

    /// [`Bencher::iter`] with an explicit calibration (`None` pins the
    /// fixed-`sample_size` behavior).
    pub fn iter_with<O, R: FnMut() -> O>(&mut self, cal: Option<Calibration>, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let mut spent = Duration::ZERO;
        let mut take = |n: usize, results: &mut Vec<Duration>, spent: &mut Duration| {
            for _ in 0..n {
                let t0 = Instant::now();
                black_box(routine());
                let d = t0.elapsed();
                *spent += d;
                results.push(d);
            }
        };
        take(self.samples, &mut self.results, &mut spent);
        let Some(cal) = cal else {
            self.calibrated = true; // the fixed count is what was asked for
            return;
        };
        let cap = self.samples.saturating_mul(CALIBRATION_MAX_FACTOR);
        loop {
            if mad_stable(&self.results, cal.mad_pct) {
                self.calibrated = true;
                return;
            }
            if spent >= cal.budget || self.results.len() >= cap {
                return; // budget exhausted before stability
            }
            take((self.samples / 2).max(1), &mut self.results, &mut spent);
        }
    }
}

/// Median and median-absolute-deviation of a sample set.
///
/// The median of an even-length set is the lower middle element (a
/// real sample, no interpolation); the MAD is the median of the
/// absolute deviations from it.
pub fn median_mad(samples: &[Duration]) -> (Duration, Duration) {
    assert!(!samples.is_empty(), "median of no samples");
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let median = sorted[(sorted.len() - 1) / 2];
    let mut dev: Vec<Duration> = sorted.iter().map(|&d| d.abs_diff(median)).collect();
    dev.sort_unstable();
    let mad = dev[(dev.len() - 1) / 2];
    (median, mad)
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        results: Vec::new(),
        calibrated: false,
    };
    f(&mut b);
    if b.results.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = b.results.iter().sum();
    let mean = total / b.results.len() as u32;
    let min = b.results.iter().min().copied().unwrap_or_default();
    let (median, mad) = median_mad(&b.results);
    let tag = if b.calibrated { "" } else { ", noisy" };
    println!(
        "{label:<48} mean {mean:>12.3?}   median {median:>12.3?} (±{mad:.3?})   min {min:>12.3?}   ({} samples{tag})",
        b.results.len()
    );
    record(BenchRecord {
        name: label.to_string(),
        iters: b.results.len(),
        calibrated: b.calibrated,
        mean_ns: mean.as_nanos(),
        min_ns: min.as_nanos(),
        median_ns: median.as_nanos(),
        mad_ns: mad.as_nanos(),
    });
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Produce a `main` that runs the listed groups, then appends the
/// results to `RTX_BENCH_JSON` (when set).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::flush_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(ns: u64) -> Duration {
        Duration::from_nanos(ns)
    }

    #[test]
    fn median_is_robust_to_outliers() {
        // One scheduler hiccup must not move the median.
        let samples = vec![d(100), d(101), d(99), d(100), d(90_000)];
        let (median, mad) = median_mad(&samples);
        assert_eq!(median, d(100));
        assert_eq!(mad, d(1));
    }

    #[test]
    fn median_of_even_sets_is_lower_middle() {
        let samples = vec![d(10), d(20), d(30), d(40)];
        let (median, _) = median_mad(&samples);
        assert_eq!(median, d(20));
        let (median, mad) = median_mad(&[d(7)]);
        assert_eq!(median, d(7));
        assert_eq!(mad, d(0));
    }

    #[test]
    fn bencher_runs_warmup_before_samples() {
        let mut b = Bencher {
            samples: 5,
            results: Vec::new(),
            calibrated: false,
        };
        let mut calls = 0usize;
        b.iter_with(None, || calls += 1);
        assert_eq!(calls, WARMUP_ITERS + 5);
        assert_eq!(b.results.len(), 5);
        assert!(b.calibrated, "a pinned count is calibrated by definition");
    }

    #[test]
    fn calibration_stops_at_stability_and_respects_cap() {
        // A perfectly steady routine stabilizes at the minimum count.
        let mut b = Bencher {
            samples: 4,
            results: Vec::new(),
            calibrated: false,
        };
        let cal = Calibration {
            mad_pct: 100, // any nonzero median passes; zero-MAD always passes
            budget: Duration::from_secs(60),
        };
        b.iter_with(Some(cal), || std::hint::black_box(0u64));
        assert!(b.calibrated);
        assert!(b.results.len() >= 4);
        assert!(b.results.len() <= 4 * CALIBRATION_MAX_FACTOR);
        // With an impossible target and zero budget, the minimum count
        // is kept and the record is flagged un-calibrated... unless the
        // timer granularity yields an exactly zero MAD, which satisfies
        // any target. Force non-stability with synthetic samples:
        assert!(!mad_stable(&[d(100), d(200), d(900)], 5));
        assert!(mad_stable(&[d(100), d(101), d(102)], 5));
    }

    #[test]
    #[should_panic(expected = "median of no samples")]
    fn median_of_empty_panics() {
        let _ = median_mad(&[]);
    }
}

//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A size specification for collection strategies (subset of
/// proptest's `SizeRange`): built from `usize`, `a..b`, or `a..=b`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_incl: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi_incl)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_incl: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_incl: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange { lo, hi_incl: hi }
    }
}

/// Strategy producing `Vec`s of `elem` with a length drawn from `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Strategy producing `BTreeSet`s of `elem` with a cardinality drawn
/// from `size` (best effort: if the element domain is too small to
/// reach the target cardinality, a smaller set is returned).
pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        elem,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = BTreeSet::new();
        // Cap the attempts so a small element domain cannot hang us.
        let mut attempts = 0usize;
        while out.len() < target && attempts < 100 * (target + 1) {
            out.insert(self.elem.generate(rng));
            attempts += 1;
        }
        out
    }
}

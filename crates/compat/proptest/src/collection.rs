//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A size specification for collection strategies (subset of
/// proptest's `SizeRange`): built from `usize`, `a..b`, or `a..=b`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_incl: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi_incl)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_incl: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_incl: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange { lo, hi_incl: hi }
    }
}

/// Strategy producing `Vec`s of `elem` with a length drawn from `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    /// Structural shrinks first (halve the length, drop one element),
    /// then element-wise shrinks via the inner strategy. Candidate
    /// lengths never fall below the size range's minimum.
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let n = value.len();
        let lo = self.size.lo;
        let mut out: Vec<Vec<S::Value>> = Vec::new();
        if n > lo {
            let half = (n / 2).max(lo);
            if half < n {
                out.push(value[..half].to_vec()); // keep the front half
                out.push(value[n - half..].to_vec()); // keep the back half
            }
            for i in 0..n {
                let mut shorter = value.clone();
                shorter.remove(i);
                out.push(shorter);
            }
        }
        for (i, v) in value.iter().enumerate() {
            for cand in self.elem.shrink(v) {
                let mut next = value.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
}

/// Strategy producing `BTreeSet`s of `elem` with a cardinality drawn
/// from `size` (best effort: if the element domain is too small to
/// reach the target cardinality, a smaller set is returned).
pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        elem,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord + Clone,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = BTreeSet::new();
        // Cap the attempts so a small element domain cannot hang us.
        let mut attempts = 0usize;
        while out.len() < target && attempts < 100 * (target + 1) {
            out.insert(self.elem.generate(rng));
            attempts += 1;
        }
        out
    }

    /// Halve the cardinality, drop single elements, then shrink
    /// individual elements (when the shrunk element is not already a
    /// member). Candidate sizes never fall below the range's minimum.
    fn shrink(&self, value: &BTreeSet<S::Value>) -> Vec<BTreeSet<S::Value>> {
        let n = value.len();
        let lo = self.size.lo;
        let mut out: Vec<BTreeSet<S::Value>> = Vec::new();
        if n > lo {
            let half = (n / 2).max(lo);
            if half < n {
                out.push(value.iter().take(half).cloned().collect());
                out.push(value.iter().skip(n - half).cloned().collect());
            }
            for drop in value {
                out.push(value.iter().filter(|v| *v != drop).cloned().collect());
            }
        }
        for old in value {
            for cand in self.elem.shrink(old) {
                if value.contains(&cand) {
                    continue; // replacement would change the cardinality
                }
                let mut next: BTreeSet<S::Value> =
                    value.iter().filter(|v| *v != old).cloned().collect();
                next.insert(cand);
                out.push(next);
            }
        }
        out
    }
}

//! # proptest (offline stand-in)
//!
//! A minimal, dependency-free property-testing harness exposing the
//! subset of the `proptest` API used by this workspace's test suites:
//! the [`proptest!`] macro, [`ProptestConfig`], `prop_assert!` /
//! `prop_assert_eq!`, `prop_oneof!`, [`strategy::Just`], [`any`], and
//! the [`collection`] strategies (`vec`, `btree_set`).
//!
//! ## Determinism
//!
//! Unlike the real proptest (which derives entropy from the OS), every
//! run here is **fully deterministic**: each test function draws its
//! inputs from a seeded [`rand::rngs::StdRng`]. Two environment
//! variables widen or redirect the search without editing code:
//!
//! * `RTX_PROPTEST_CASES` — overrides the per-test case count (e.g.
//!   `RTX_PROPTEST_CASES=2000 cargo test` for deeper local fuzzing);
//! * `RTX_PROPTEST_SEED` — changes the base seed (default `0x5EED`).
//!
//! ## Shrinking
//!
//! A failing case is **shrunk** before it is reported: the harness
//! greedily applies [`Strategy::shrink`] candidates (halving toward the
//! strategy's minimum, dropping collection elements, then linear steps)
//! as long as the property keeps failing, and the panic message shows
//! the minimized arguments next to the case index and seed. Shrinking
//! is capped at [`MAX_SHRINK_EVALS`] property re-executions, so a slow
//! property cannot hang the reporter.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use strategy::{any, Just, Strategy, Union};

/// Per-`proptest!`-block configuration. Only `cases` is modelled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each test function runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `RTX_PROPTEST_CASES` override.
    pub fn effective_cases(&self) -> u32 {
        match rtx_core::env::parse_u64("RTX_PROPTEST_CASES") {
            Some(n) if n > u32::MAX as u64 => {
                eprintln!(
                    "warning: clamping RTX_PROPTEST_CASES={n} to u32::MAX ({})",
                    u32::MAX
                );
                u32::MAX
            }
            Some(n) => n as u32,
            None => self.cases,
        }
    }
}

/// The base seed: `RTX_PROPTEST_SEED` if set, else `0x5EED`.
/// Accepts decimal or `0x`-prefixed hex (failure reports print hex).
pub fn base_seed() -> u64 {
    rtx_core::env::parse_u64("RTX_PROPTEST_SEED").unwrap_or(0x5EED)
}

/// Deterministic RNG for one test function: the base seed mixed with a
/// hash of the test's name, so each test explores its own stream.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(base_seed() ^ h)
}

/// Cap on property re-executions during shrinking.
pub const MAX_SHRINK_EVALS: usize = 512;

/// Greedily minimize a failing input: repeatedly try the strategy's
/// shrink candidates and keep the first one that still fails, until no
/// candidate fails (a local minimum) or [`MAX_SHRINK_EVALS`] property
/// re-executions have been spent.
///
/// Returns the minimized value, the failure message it produced, and
/// how many shrinking steps were accepted. Used by the [`proptest!`]
/// macro; public so custom harnesses can reuse it.
pub fn shrink_failure<S, F>(
    strategy: &S,
    failing: S::Value,
    err: TestCaseError,
    run: F,
) -> (S::Value, TestCaseError, usize)
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), TestCaseError>,
{
    let mut best = failing;
    let mut msg = err;
    let mut evals = 0usize;
    let mut accepted = 0usize;
    'outer: loop {
        for cand in strategy.shrink(&best) {
            if evals >= MAX_SHRINK_EVALS {
                break 'outer;
            }
            evals += 1;
            if let Err(e) = run(&cand) {
                best = cand;
                msg = e;
                accepted += 1;
                continue 'outer; // restart from the smaller input
            }
        }
        break; // no candidate fails: local minimum
    }
    (best, msg, accepted)
}

/// Identity helper that pins a property closure's argument type to the
/// strategy's value type, so the [`proptest!`] macro can define the
/// closure before the first generated value exists. Implementation
/// detail of the macro.
#[doc(hidden)]
pub fn bind_runner<S, F>(_strategy: &S, f: F) -> F
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), TestCaseError>,
{
    f
}

/// A failed property assertion (carries the formatted message).
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Everything the test suites import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Define property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn prop(x in 0u8..10, v in proptest::collection::vec(0i64..5, 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __cases = __cfg.effective_cases();
            let mut __rng = $crate::test_rng(stringify!($name));
            // All argument strategies combined into one tuple strategy,
            // so the whole input shrinks coordinate-wise.
            let __strat = ($(($strat),)+);
            let __run = $crate::bind_runner(&__strat, |__vals| {
                let ($($arg,)+) = ::std::clone::Clone::clone(__vals);
                $body
                ::std::result::Result::Ok(())
            });
            for __case in 0..__cases {
                let __vals = $crate::Strategy::generate(&__strat, &mut __rng);
                if let ::std::result::Result::Err(__e) = __run(&__vals) {
                    let (__min, __msg, __steps) =
                        $crate::shrink_failure(&__strat, __vals, __e, &__run);
                    let ($($arg,)+) = __min;
                    panic!(
                        "property `{}` failed at case {}/{} (base seed {:#x}): {}\n\
                         minimized counterexample ({} shrinking steps):{}",
                        stringify!($name), __case, __cases, $crate::base_seed(), __msg,
                        __steps,
                        format!(
                            concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                            $($arg),+
                        )
                    );
                }
            }
        }
        $crate::__proptest_tests! { cfg = ($cfg); $($rest)* }
    };
}

/// Assert inside a `proptest!` body; fails the case instead of panicking
/// directly so the harness can report the case index and seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Uniformly choose among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

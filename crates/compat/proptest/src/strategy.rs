//! Value-generation strategies with simple halving/linear shrinking.

use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Generates random values of `Self::Value` from a seeded RNG.
///
/// The real proptest builds shrinkable value *trees*; this stand-in
/// generates plain values and shrinks them after the fact:
/// [`Strategy::shrink`] proposes strictly "smaller" candidate values
/// (halving toward the strategy's minimum, then linear steps), and the
/// test harness greedily keeps candidates that still fail. Every
/// candidate stays inside the strategy's domain, so minimized
/// counterexamples satisfy the same invariants as generated ones.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Candidate simplifications of `value`, simplest first. Default:
    /// none (the value is reported as-is).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Halving/linear candidates for an integer `v` with minimum `lo`:
/// `lo` itself, the midpoint between `lo` and `v`, and `v - 1`.
///
/// The midpoint is computed in `i128` so signed ranges spanning more
/// than the type's maximum (e.g. `-100i8..100`) cannot overflow; every
/// integer type here fits in `i128`.
macro_rules! int_candidates {
    ($v:expr, $lo:expr, $t:ty) => {{
        let v = $v;
        let lo = $lo;
        let mut out: Vec<$t> = Vec::new();
        if v > lo {
            out.push(lo);
            let mid = (((lo as i128) + (v as i128)) / 2) as $t;
            if mid != lo && mid != v {
                out.push(mid);
            }
            if v - 1 != lo {
                out.push(v - 1);
            }
        }
        out
    }};
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_candidates!(*value, self.start, $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_candidates!(*value, *self.start(), $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($idx:tt, $name:ident)),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            // Shrink one coordinate at a time, holding the others.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!((0, A));
impl_tuple_strategy!((0, A), (1, B));
impl_tuple_strategy!((0, A), (1, B), (2, C));
impl_tuple_strategy!((0, A), (1, B), (2, C), (3, D));
impl_tuple_strategy!((0, A), (1, B), (2, C), (3, D), (4, E));
impl_tuple_strategy!((0, A), (1, B), (2, C), (3, D), (4, E), (5, F));

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy for "any value of `T`" — see [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T` (`any::<bool>()`, `any::<u8>()`, …).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
            // Halve toward zero, then step linearly.
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    let mid = v / 2;
                    if mid != 0 && mid != v {
                        out.push(mid);
                    }
                    let step = if v > 0 { v - 1 } else { v + 1 };
                    if step != 0 && step != mid {
                        out.push(step);
                    }
                }
                out
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, i8, i16, i32, i64);

/// Uniform choice among boxed strategies (what `prop_oneof!` builds).
pub struct Union<T> {
    branches: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over the given non-empty branch list.
    pub fn new(branches: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.branches.len());
        self.branches[i].generate(rng)
    }
}

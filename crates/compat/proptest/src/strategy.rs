//! Value-generation strategies (no shrinking).

use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Generates random values of `Self::Value` from a seeded RNG.
///
/// The real proptest builds shrinkable value *trees*; this stand-in
/// generates plain values — enough for deterministic CI properties.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy for "any value of `T`" — see [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T` (`any::<bool>()`, `any::<u8>()`, …).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, i8, i16, i32, i64);

/// Uniform choice among boxed strategies (what `prop_oneof!` builds).
pub struct Union<T> {
    branches: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over the given non-empty branch list.
    pub fn new(branches: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.branches.len());
        self.branches[i].generate(rng)
    }
}

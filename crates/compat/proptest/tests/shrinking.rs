//! The shrinking contract: failing inputs are minimized by halving /
//! linear steps, candidates stay inside the strategy's domain, and the
//! macro reports the minimized counterexample.

use proptest::collection::{btree_set, vec};
use proptest::prelude::*;
use proptest::{shrink_failure, Strategy, TestCaseError};

#[test]
fn range_shrink_candidates_stay_in_range_and_get_smaller() {
    let s = 10u32..100;
    let cands = s.shrink(&57);
    assert!(!cands.is_empty());
    for c in &cands {
        assert!((10..100).contains(c) && *c < 57, "bad candidate {c}");
    }
    // the minimum has no candidates
    assert!(s.shrink(&10).is_empty());
    // inclusive ranges shrink toward their start
    let si = 5i64..=9;
    assert!(si.shrink(&5).is_empty());
    assert!(si.shrink(&9).iter().all(|c| (5..9).contains(c)));
}

#[test]
fn wide_signed_ranges_shrink_without_overflow() {
    // span > i8::MAX: the naive `lo + (v - lo) / 2` midpoint overflows
    let s = -100i8..100;
    for v in [-99i8, -1, 0, 1, 99] {
        for c in s.shrink(&v) {
            assert!(
                (-100..100).contains(&c) && c < v,
                "bad candidate {c} for {v}"
            );
        }
    }
    assert!(s.shrink(&-100).is_empty());
    let su = 0u64..u64::MAX;
    assert!(su.shrink(&(u64::MAX - 1)).iter().all(|&c| c < u64::MAX - 1));
}

#[test]
fn any_int_shrinks_toward_zero_from_both_signs() {
    let s = any::<i32>();
    assert!(s.shrink(&0).is_empty());
    assert!(s.shrink(&40).contains(&0));
    assert!(s.shrink(&40).iter().all(|&c| (0..40).contains(&c)));
    assert!(s.shrink(&-40).iter().all(|&c| c > -40 && c <= 0));
    assert_eq!(any::<bool>().shrink(&true), vec![false]);
    assert!(any::<bool>().shrink(&false).is_empty());
}

#[test]
fn vec_shrink_respects_min_len_and_shrinks_elements() {
    let s = vec(0u8..50, 2..6);
    let v = vec![9u8, 30, 4, 11, 2];
    for c in s.shrink(&v) {
        assert!(c.len() >= 2, "candidate below min length: {c:?}");
        assert!(c.iter().all(|&x| x < 50));
        assert_ne!(c, v, "candidate equals the input");
    }
    // a vec at min length still shrinks element-wise
    let at_min = vec![7u8, 7];
    assert!(s.shrink(&at_min).iter().all(|c| c.len() == 2));
    assert!(!s.shrink(&at_min).is_empty());
}

#[test]
fn btree_set_shrink_respects_min_cardinality() {
    let s = btree_set(0i64..40, 1..5);
    let v: std::collections::BTreeSet<i64> = [3, 17, 29].into_iter().collect();
    let cands = s.shrink(&v);
    assert!(!cands.is_empty());
    for c in &cands {
        assert!(!c.is_empty(), "below min cardinality");
        assert!(c.iter().all(|&x| (0..40).contains(&x)));
        assert_ne!(c, &v);
    }
}

#[test]
fn shrink_failure_minimizes_a_sum_property() {
    // fails whenever the vec has ≥ 3 elements; minimal failing input
    // under the strategy is any 3-element vec of zeros.
    let strat = (vec(0i64..100, 0..10),);
    let run = |vals: &(Vec<i64>,)| -> Result<(), TestCaseError> {
        if vals.0.len() >= 3 {
            Err(TestCaseError::fail("too long"))
        } else {
            Ok(())
        }
    };
    let failing = (vec![55i64, 3, 99, 14, 8, 61],);
    let err = run(&failing).unwrap_err();
    let (min, _msg, steps) = shrink_failure(&strat, failing, err, run);
    assert_eq!(min.0.len(), 3, "length not minimized: {:?}", min.0);
    assert!(
        min.0.iter().all(|&x| x == 0),
        "elements not minimized: {:?}",
        min.0
    );
    assert!(steps > 0);
}

#[test]
fn shrink_failure_minimizes_coordinates_independently() {
    // fails when x ≥ 7 (y is irrelevant and should shrink to its min).
    let strat = (0u32..100, 5u32..50);
    let run = |&(x, _y): &(u32, u32)| -> Result<(), TestCaseError> {
        if x >= 7 {
            Err(TestCaseError::fail("x too big"))
        } else {
            Ok(())
        }
    };
    let failing = (93u32, 41u32);
    let err = run(&failing).unwrap_err();
    let (min, _msg, _steps) = shrink_failure(&strat, failing, err, run);
    assert_eq!(min, (7, 5));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // End to end: the macro panics with the minimized arguments in the
    // message. x ≥ 10 always fails, so the minimum is the range start.
    #[test]
    #[should_panic(expected = "x = 10")]
    fn macro_reports_minimized_counterexample(x in 10u32..1000) {
        prop_assert!(x < 10);
    }

    #[test]
    #[should_panic(expected = "minimized counterexample")]
    fn macro_mentions_shrinking(v in proptest::collection::vec(0i64..50, 1..8)) {
        prop_assert!(v.is_empty()); // always fails (min length is 1)
    }

    // A passing property still passes: shrinking must not perturb the
    // happy path.
    #[test]
    fn macro_happy_path_unchanged(x in 0u8..10, v in proptest::collection::vec(0i64..5, 0..4)) {
        prop_assert!(x < 10);
        prop_assert!(v.len() < 4);
    }
}

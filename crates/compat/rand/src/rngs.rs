//! Concrete generators.

use crate::{Rng, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++,
/// seeded via SplitMix64. Stream differs from the real `rand::rngs::StdRng`
/// but has the same role — a fast, seedable, reproducible PRNG.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}

//! Sequence-related helpers (`rand::seq` subset).

use crate::Rng;

/// Extension trait for slices: in-place shuffling and uniform choice.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// Uniformly pick a reference to one element (`None` if empty).
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get((rng.next_u64() % self.len() as u64) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(0);
        let v: Vec<u32> = Vec::new();
        assert!(v.choose(&mut rng).is_none());
        assert_eq!([9].choose(&mut rng), Some(&9));
    }
}

//! # rand (offline stand-in)
//!
//! This workspace must build with **no network access**, so this crate
//! vendors the tiny subset of the `rand` 0.8 API that the `rtx` crates
//! use: [`rngs::StdRng`], the [`Rng`] and [`SeedableRng`] traits
//! (`gen_range`, `gen_bool`), and [`seq::SliceRandom`]
//! (`shuffle`, `choose`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! deterministic, and identical on every platform. It is **not** the
//! same stream as the real `StdRng` (ChaCha12), and it is **not**
//! cryptographically secure; it only needs to drive reproducible
//! simulations and tests.

#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// A source of randomness. Mirrors the `rand::Rng` surface the
/// workspace uses: `gen_range` over integer ranges and `gen_bool`.
pub trait Rng {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from an integer range (`a..b` or `a..=b`).
    ///
    /// Panics on an empty range, like the real `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 uniform mantissa bits, exactly like rand's f64 sampling.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable source of randomness (the only constructor the workspace
/// uses is `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform sample; panics if the range is empty.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

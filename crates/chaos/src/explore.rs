//! The schedule explorer and empirical eventual-consistency checker.
//!
//! The paper's consistency notion quantifies over **all** fair runs:
//! a transducer network is consistent when every fair run produces the
//! same quiescent output. [`explore`] probes that universally
//! quantified claim empirically: it executes `runs` adversarial runs —
//! a small set of targeted heuristics (starve one edge, burst then
//! partition, duplicate everything) followed by seeded random search
//! over [`FaultPlanStrategy`] — and compares every quiescent output
//! against the fault-free reference. The verdict is either *consistent
//! over N runs* or a **minimized** diverging schedule: the offending
//! fault plan is shrunk with the compat-proptest shrinker until every
//! remaining fault is load-bearing, giving a smallest-found pair of
//! schedules (the fault-free reference run and the minimized faulted
//! run) whose outputs differ.
//!
//! [`cross_validate`] ties the loop back to the CALM classifier: a
//! syntactically monotone transducer is coordination-free (Theorem 12),
//! so a fair-adversary divergence would refute
//! `rtx_transducer::Classification` — the explorer is the empirical
//! court for the classifier's verdicts. [`explore_dedalus`] plays the
//! same game for Dedalus programs over async fault plans.

use crate::plan::FaultPlan;
use crate::plan::{mix, Crash, CrashKind, LinkFaults, Partition};
use crate::session::{run_round_faulted, FaultSession};
use crate::strategy::{Adversary, AsyncPlanStrategy, FaultPlanStrategy};
use proptest::{shrink_failure, Strategy, TestCaseError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtx_dedalus::{AsyncFaultPlan, DedalusOptions, DedalusProgram, DedalusRuntime, TemporalFacts};
use rtx_net::{run_auto, HorizontalPartition, NetError, Network, NodeId, RunBudget, ShardOptions};
use rtx_query::EvalError;
use rtx_relational::{Instance, Relation, Tuple};
use rtx_transducer::{Classification, Transducer};
use std::collections::BTreeMap;

/// Explorer configuration.
#[derive(Clone, Debug)]
pub struct ExplorerOptions {
    /// Total adversarial runs (heuristics first, then random search).
    pub runs: usize,
    /// Base seed: every plan and every per-run decision seed derives
    /// from it, so an explorer invocation is replayable end to end.
    pub seed: u64,
    /// Cap on random per-link delays (scheduling units).
    pub max_delay: u32,
    /// Cap on partition/crash window lengths.
    pub max_hold: u64,
    /// Cap on fault event start times.
    pub horizon: u64,
    /// Per-run step budget.
    pub budget: RunBudget,
    /// The adversary space searched.
    pub adversary: Adversary,
    /// Minimize diverging plans with the proptest shrinker.
    pub shrink: bool,
    /// Compare **per-node** outputs instead of the global union. The
    /// paper's consistency notion is about the global output `out(ρ)`
    /// (the default); the per-node check is strictly stronger and
    /// catches localized losses — e.g. a persistent-EDB crash starving
    /// one node of a dissemination — that the union hides because every
    /// fact's originator outputs it anyway. Disables the early-exit
    /// target (a run must quiesce or exhaust its budget).
    pub per_node: bool,
}

impl ExplorerOptions {
    /// Environment-resolved defaults: `RTX_CHAOS_RUNS` (default 64)
    /// and `RTX_CHAOS_SEED` (default `0xC4A05EED`), a fair adversary,
    /// and a 200k-step budget per run.
    pub fn auto() -> ExplorerOptions {
        ExplorerOptions {
            runs: rtx_core::env::parse_positive_usize("RTX_CHAOS_RUNS").unwrap_or(64),
            seed: rtx_core::env::parse_u64("RTX_CHAOS_SEED").unwrap_or(0xC4A0_5EED),
            max_delay: 4,
            max_hold: 8,
            horizon: 6,
            budget: RunBudget::steps(200_000),
            adversary: Adversary::Fair,
            shrink: true,
            per_node: false,
        }
    }

    /// Override the run count.
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Override the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the adversary space.
    pub fn with_adversary(mut self, adversary: Adversary) -> Self {
        self.adversary = adversary;
        self
    }

    /// Override the per-run budget.
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Compare per-node outputs instead of the global union.
    pub fn per_node(mut self) -> Self {
        self.per_node = true;
        self
    }
}

/// Where a divergence first becomes visible: the earliest point in the
/// minimized faulted replay at which its outputs are known to depart
/// from the fault-free reference.
///
/// Computed by replaying the minimized `(plan, seed)` once with the
/// transition log enabled and walking the log in application order.
/// An **extra** fact is pinned to the exact transition that emitted it;
/// a **missing** fact has no emitting transition to point at, so it is
/// pinned to the round the replay ended in — the run completed (or
/// exhausted its budget) without ever deriving the fact.
#[derive(Clone, Debug)]
pub struct Localization {
    /// The node that witnesses the divergence: the emitter of an extra
    /// fact, or the node a missing fact was expected at (in global
    /// mode, the first node that outputs it in the reference run).
    pub node: NodeId,
    /// The witness output tuple.
    pub fact: Tuple,
    /// `true` when the faulted run emitted a fact the reference never
    /// outputs; `false` when an expected fact never appeared.
    pub extra: bool,
    /// The first divergent round (1-based): the emitting transition's
    /// round for an extra fact, the replay's final round for a missing
    /// one.
    pub round: u64,
}

/// A minimized pair of diverging schedules: the fault-free reference
/// run against the smallest-found faulted run with a different output.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The minimized fault plan (replay with [`FaultSession::new`]
    /// under `seed`).
    pub plan: FaultPlan,
    /// The per-run decision seed of the diverging run.
    pub seed: u64,
    /// The run index at which the original divergence surfaced.
    pub found_at_run: usize,
    /// Shrinking steps accepted while minimizing.
    pub shrink_steps: usize,
    /// The reference (fault-free) output.
    pub expected: Relation,
    /// The diverging run's output.
    pub observed: Relation,
    /// Was the divergence in the per-node outputs? When set, `expected`
    /// and `observed` (the global unions) may coincide — the difference
    /// is at individual nodes (see [`ExplorerOptions::per_node`]).
    pub per_node: bool,
    /// Which node, which fact, and which round the divergence first
    /// surfaces at in the minimized replay. `None` only if the logged
    /// replay found no witness (e.g. the early-exit target stopped the
    /// replay at exact agreement).
    pub localization: Option<Localization>,
    /// The full trace of the minimized diverging replay, captured at
    /// forced [`rtx_obs::TraceLevel::Full`] regardless of `RTX_TRACE`.
    /// `trace.node_timeline(node)` of the localized node is the
    /// round-by-round divergence listing `exp_chaos` prints.
    pub trace: rtx_obs::RunTrace,
}

/// The explorer's verdict for one `(network, transducer, partition)`.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// The probed transducer's name.
    pub program: String,
    /// Runs actually executed (the search stops at the first
    /// divergence).
    pub runs_executed: usize,
    /// How many of the executed runs were targeted heuristics.
    pub heuristic_runs: usize,
    /// The fault-free reference output.
    pub reference: Relation,
    /// Did the reference run quiesce within budget?
    pub reference_quiescent: bool,
    /// The minimized divergence, when one was found.
    pub divergence: Option<Divergence>,
}

impl ExploreReport {
    /// No divergence found over the executed runs.
    ///
    /// This is a bounded-confidence **empirical** verdict: runs are
    /// step-budgeted and (in global mode) early-exit at exact output
    /// agreement, so a divergence that only manifests past the budget
    /// — or whose output passes exactly through the reference before
    /// growing — can be missed. A `false` verdict, by contrast, always
    /// carries a real, replayable, budget-confirmed divergence.
    pub fn consistent(&self) -> bool {
        self.divergence.is_none()
    }
}

/// The targeted heuristic plans for a topology: starve each directed
/// edge, isolate each node behind a late-healing partition after a
/// fault-free burst, and duplicate everything. Deterministic and
/// bounded (at most 8 starved edges and 4 isolated nodes).
pub fn heuristic_plans(
    nodes: usize,
    edges: &[(usize, usize)],
    opts: &ExplorerOptions,
) -> Vec<FaultPlan> {
    let mut plans = Vec::new();
    // duplicate-everything: the paper's duplicating network, maximally
    for dup_delay in [0u32, 2] {
        let mut p = FaultPlan::none();
        p.default_link = LinkFaults {
            delay: (0, dup_delay),
            dup_millis: 1000,
            drop_millis: 0,
        };
        plans.push(p);
    }
    // starve-one-edge: hold one directed edge's messages much longer
    for &(s, d) in edges.iter().take(8) {
        let mut p = FaultPlan::none();
        p.links.insert(
            (s, d),
            LinkFaults::delayed((opts.max_hold as u32).max(opts.max_delay)),
        );
        plans.push(p);
    }
    // burst-then-partition: run fault-free for a burst, then cut one
    // node off until a late heal
    for node in 0..nodes.min(4) {
        let mut p = FaultPlan::none();
        p.partitions.push(Partition {
            side: [node].into_iter().collect(),
            from: 2,
            heal: 2 + opts.max_hold.max(1),
        });
        plans.push(p);
    }
    if opts.adversary == Adversary::CrashFaulty {
        // crash each node once with soft-state loss
        for node in 0..nodes.min(4) {
            let mut p = FaultPlan::none();
            p.crashes.push(Crash {
                node,
                at: 2,
                restart: Some(2 + opts.max_hold.max(1)),
                kind: CrashKind::PersistentEdb,
            });
            plans.push(p);
        }
    }
    plans
}

/// The directed edges of a network, by ascending node index.
pub fn directed_edges(net: &Network) -> Vec<(usize, usize)> {
    let nodes: Vec<&NodeId> = net.nodes().collect();
    let index: BTreeMap<&NodeId, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let mut edges = Vec::new();
    for (i, n) in nodes.iter().enumerate() {
        for m in net.neighbors(n) {
            edges.push((i, index[m]));
        }
    }
    edges
}

/// Execute `runs` adversarial runs of `(net, transducer, partition)`
/// and check empirical eventual consistency against the fault-free
/// reference. See the module docs for the search structure; every run
/// is replayable from the report (plan + seed), and the whole search is
/// replayable from `opts.seed`.
pub fn explore(
    net: &Network,
    transducer: &Transducer,
    partition: &HorizontalPartition,
    opts: &ExplorerOptions,
) -> Result<ExploreReport, NetError> {
    let serial = ShardOptions::serial();
    let reference = run_auto(net, transducer, partition, &serial, &opts.budget)?;
    let expected = reference.outcome.output.clone();
    let edges = directed_edges(net);
    let strategy = FaultPlanStrategy {
        nodes: net.len(),
        edges,
        max_delay: opts.max_delay,
        max_hold: opts.max_hold,
        horizon: opts.horizon,
        adversary: opts.adversary,
    };
    let heuristics = heuristic_plans(net.len(), &strategy.edges, opts);
    let heuristic_runs = heuristics.len().min(opts.runs);
    // Early-exit budget: a consistent run stops the moment its global
    // output reaches the reference exactly. Outputs accumulate
    // monotonically, so a run that jumps *past* the reference (a
    // proper superset without ever equaling it) still runs on and is
    // caught by the comparison at budget end — but a run whose output
    // passes through the reference exactly and would only later exceed
    // it is stopped at the equality point and counted consistent.
    // That is a deliberate cost/soundness trade: `consistent` is a
    // bounded-confidence empirical verdict either way (a divergence
    // past the step budget is equally invisible), while reported
    // divergences are always real. The stronger per-node check cannot
    // early-exit — nodes finish at different times — so it runs to
    // quiescence or budget.
    let run_budget = if opts.per_node {
        opts.budget.clone()
    } else {
        RunBudget {
            max_steps: opts.budget.max_steps,
            target_output: Some(expected.clone()),
        }
    };
    let diverges = |out: &rtx_net::ShardRunOutcome| {
        if opts.per_node {
            out.outcome.outputs_per_node != reference.outcome.outputs_per_node
        } else {
            out.outcome.output != expected
        }
    };
    let mut runs_executed = 0usize;
    for i in 0..opts.runs {
        let plan = if i < heuristics.len() {
            heuristics[i].clone()
        } else {
            let mut rng = StdRng::seed_from_u64(mix(&[opts.seed, i as u64, 0x9E4]));
            strategy.generate(&mut rng)
        };
        let seed = mix(&[opts.seed, i as u64, 0xF00D]);
        let session = FaultSession::new(plan.clone(), seed);
        let out = run_round_faulted(net, transducer, partition, &serial, &run_budget, &session)?;
        runs_executed += 1;
        if diverges(&out) {
            // Confirm at an escalated budget before reporting: a fair
            // plan only delays delivery, so a slow-but-consistent run
            // that merely exhausted its step budget mid-dissemination
            // must not refute the program (a false CALM refutation).
            // Only divergences that survive 4× the per-run budget are
            // reported; the shrinker then checks candidates at the
            // same escalated budget.
            let confirm_budget = RunBudget {
                max_steps: run_budget.max_steps.saturating_mul(4),
                target_output: run_budget.target_output.clone(),
            };
            let confirm = run_round_faulted(
                net,
                transducer,
                partition,
                &serial,
                &confirm_budget,
                &session,
            )?;
            if !diverges(&confirm) {
                continue; // slow, not divergent
            }
            let divergence = minimize(
                net,
                transducer,
                partition,
                &strategy,
                plan,
                seed,
                i,
                &confirm_budget,
                &expected,
                &reference.outcome.outputs_per_node,
                &diverges,
                opts,
            )?;
            return Ok(ExploreReport {
                program: transducer.name().to_string(),
                runs_executed,
                heuristic_runs: heuristic_runs.min(runs_executed),
                reference: expected,
                reference_quiescent: reference.outcome.quiescent,
                divergence: Some(divergence),
            });
        }
    }
    Ok(ExploreReport {
        program: transducer.name().to_string(),
        runs_executed,
        heuristic_runs,
        reference: expected,
        reference_quiescent: reference.outcome.quiescent,
        divergence: None,
    })
}

/// Minimize a diverging plan with the compat-proptest shrinker, then
/// replay the minimum with the transition log enabled to capture its
/// output and localize the divergence.
#[allow(clippy::too_many_arguments)]
fn minimize(
    net: &Network,
    transducer: &Transducer,
    partition: &HorizontalPartition,
    strategy: &FaultPlanStrategy,
    plan: FaultPlan,
    seed: u64,
    found_at_run: usize,
    budget: &RunBudget,
    expected: &Relation,
    expected_per_node: &BTreeMap<NodeId, Relation>,
    diverges: &dyn Fn(&rtx_net::ShardRunOutcome) -> bool,
    opts: &ExplorerOptions,
) -> Result<Divergence, NetError> {
    let serial = ShardOptions::serial();
    let (min_plan, _msg, shrink_steps) = if opts.shrink {
        let check = |candidate: &FaultPlan| -> Result<(), TestCaseError> {
            let session = FaultSession::new(candidate.clone(), seed);
            match run_round_faulted(net, transducer, partition, &serial, budget, &session) {
                // An erroring candidate is treated as non-diverging, so
                // shrinking steers away from it.
                Err(_) => Ok(()),
                Ok(out) if diverges(&out) => Err(TestCaseError::fail("diverges")),
                Ok(_) => Ok(()),
            }
        };
        shrink_failure(strategy, plan, TestCaseError::fail("diverges"), check)
    } else {
        (plan, TestCaseError::fail("diverges"), 0)
    };
    let session = FaultSession::new(min_plan.clone(), seed);
    let logged = ShardOptions::serial().with_log();
    // Replay the minimum at forced-full trace level: the divergence
    // report embeds the replay's event timeline whatever `RTX_TRACE`
    // says (the capture frame keeps it out of any enclosing trace).
    let (out, trace) = {
        let _full = rtx_obs::trace::level_guard(rtx_obs::TraceLevel::Full);
        rtx_obs::trace::capture_run(|| {
            run_round_faulted(net, transducer, partition, &logged, budget, &session)
        })
    };
    let out = out?;
    rtx_obs::registry::add("chaos.divergences", 1);
    rtx_obs::registry::add("chaos.shrink_steps", shrink_steps as u64);
    let localization = localize(&out, expected, expected_per_node, opts.per_node);
    Ok(Divergence {
        plan: min_plan,
        seed,
        found_at_run,
        shrink_steps,
        expected: expected.clone(),
        observed: out.outcome.output,
        per_node: opts.per_node,
        localization,
        trace,
    })
}

/// Walk a logged faulted replay and pin down the first point where it
/// departs from the reference outputs (see [`Localization`]).
///
/// Extra facts win over missing ones: the log is scanned in application
/// order, so the first transition emitting a fact the reference never
/// outputs (at that node in per-node mode, anywhere in global mode) is
/// the earliest observable divergence. Only when the faulted outputs
/// are a strict subset of the reference's does the missing-fact case
/// apply, and then no single round "causes" the loss — the whole
/// remaining run fails to derive the fact — so the replay's final round
/// is reported.
fn localize(
    out: &rtx_net::ShardRunOutcome,
    expected: &Relation,
    expected_per_node: &BTreeMap<NodeId, Relation>,
    per_node: bool,
) -> Option<Localization> {
    let log = out.log.as_ref()?;
    for rec in log.iter() {
        let allowed = if per_node {
            expected_per_node.get(&rec.node)
        } else {
            Some(expected)
        };
        for t in rec.output.iter() {
            if !allowed.is_some_and(|r| r.contains(t)) {
                return Some(Localization {
                    node: rec.node,
                    fact: t.clone(),
                    extra: true,
                    round: rec.round,
                });
            }
        }
    }
    let last_round = out.rounds as u64;
    if per_node {
        for (node, exp) in expected_per_node {
            let got = out.outcome.outputs_per_node.get(node);
            for t in exp.iter() {
                if !got.is_some_and(|r| r.contains(t)) {
                    return Some(Localization {
                        node: *node,
                        fact: t.clone(),
                        extra: false,
                        round: last_round,
                    });
                }
            }
        }
    } else {
        for t in expected.iter() {
            if !out.outcome.output.contains(t) {
                // Pin the loss on the node that derives the fact in the
                // fault-free run (ties broken by node order).
                let node = expected_per_node
                    .iter()
                    .find(|(_, r)| r.contains(t))
                    .map(|(n, _)| *n)?;
                return Some(Localization {
                    node,
                    fact: t.clone(),
                    extra: false,
                    round: last_round,
                });
            }
        }
    }
    None
}

/// The classifier's verdict cross-validated against the explorer.
#[derive(Clone, Debug)]
pub struct CalmCrossCheck {
    /// The syntactic CALM classification of the transducer.
    pub classification: Classification,
    /// The explorer's empirical report.
    pub report: ExploreReport,
}

impl CalmCrossCheck {
    /// Does the empirical evidence agree with the classifier?
    /// Syntactic monotonicity is sound for coordination-freeness
    /// (Theorem 12), so `monotone ⟹ no fair-adversary divergence`; a
    /// violation refutes the classifier (or the fault layer). The
    /// converse direction is not checked — non-monotone programs may
    /// still be consistent (the classifier is conservative).
    pub fn agrees(&self) -> bool {
        !self.classification.monotone || self.report.consistent()
    }
}

/// Classify `transducer` syntactically and stress the verdict with the
/// explorer under a **fair** adversary (whatever `opts.adversary`
/// says — the theorems only speak about fair runs).
pub fn cross_validate(
    net: &Network,
    transducer: &Transducer,
    partition: &HorizontalPartition,
    opts: &ExplorerOptions,
) -> Result<CalmCrossCheck, NetError> {
    let fair = opts.clone().with_adversary(Adversary::Fair);
    Ok(CalmCrossCheck {
        classification: Classification::of(transducer),
        report: explore(net, transducer, partition, &fair)?,
    })
}

/// A diverging pair of Dedalus async schedules.
#[derive(Clone, Debug)]
pub struct DedalusDivergence {
    /// The minimized async fault plan.
    pub plan: AsyncFaultPlan,
    /// The run index at which the divergence surfaced.
    pub found_at_run: usize,
    /// Shrinking steps accepted while minimizing.
    pub shrink_steps: usize,
    /// Did the diverging run converge at all?
    pub converged: bool,
}

/// The explorer's verdict for a Dedalus program.
#[derive(Clone, Debug)]
pub struct DedalusExploreReport {
    /// Runs executed (stops at the first divergence).
    pub runs_executed: usize,
    /// Did the reference run converge?
    pub reference_converged: bool,
    /// The reference run's limit database.
    pub reference: Instance,
    /// The minimized divergence, when found.
    pub divergence: Option<DedalusDivergence>,
}

impl DedalusExploreReport {
    /// No divergence found.
    pub fn consistent(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Probe the eventual consistency of a Dedalus program over `runs`
/// adversarial async schedules: each run replaces the plain delay draw
/// with a seeded [`AsyncFaultPlan`] (reseeded, widened, duplicating)
/// and compares the converged limit database against the reference
/// run's. Divergences are minimized with the same shrinker.
///
/// Limits are compared **modulo in-flight messages**: facts whose
/// predicate heads an async rule are ephemeral channel state (a
/// duplicated delivery can land in the tick the database happens to
/// stabilize at), so the observable outcome is the limit restricted to
/// everything else.
pub fn explore_dedalus(
    program: &DedalusProgram,
    edb: &TemporalFacts,
    base: &DedalusOptions,
    opts: &ExplorerOptions,
) -> Result<DedalusExploreReport, EvalError> {
    use rtx_dedalus::DTime;
    let channels: std::collections::BTreeSet<rtx_relational::RelName> = program
        .rules_with(DTime::Async)
        .map(|r| r.head().pred.clone())
        .collect();
    let observable = |db: &Instance| -> Vec<rtx_relational::Fact> {
        db.facts().filter(|f| !channels.contains(f.rel())).collect()
    };
    let runtime = DedalusRuntime::new(program)?;
    let reference = runtime.run(edb, base)?;
    let ref_converged = reference.converged();
    let ref_db = reference.last().clone();
    let ref_observable = observable(&ref_db);
    let strategy = AsyncPlanStrategy {
        max_extra: opts.max_hold,
    };
    let agrees = |plan: &AsyncFaultPlan| -> Result<bool, EvalError> {
        let run_opts = DedalusOptions {
            async_faults: Some(*plan),
            ..base.clone()
        };
        let trace = runtime.run(edb, &run_opts)?;
        Ok(trace.converged() == ref_converged
            && (!ref_converged || observable(trace.last()) == ref_observable))
    };
    let mut runs_executed = 0usize;
    for i in 0..opts.runs {
        let mut rng = StdRng::seed_from_u64(mix(&[opts.seed, i as u64, 0xDEDA]));
        let plan = strategy.generate(&mut rng);
        runs_executed += 1;
        if !agrees(&plan)? {
            let (min_plan, _msg, shrink_steps) = if opts.shrink {
                let check = |candidate: &AsyncFaultPlan| -> Result<(), TestCaseError> {
                    match agrees(candidate) {
                        Err(_) | Ok(true) => Ok(()),
                        Ok(false) => Err(TestCaseError::fail("diverges")),
                    }
                };
                shrink_failure(&strategy, plan, TestCaseError::fail("diverges"), check)
            } else {
                (plan, TestCaseError::fail("diverges"), 0)
            };
            let run_opts = DedalusOptions {
                async_faults: Some(min_plan),
                ..base.clone()
            };
            let converged = runtime.run(edb, &run_opts)?.converged();
            return Ok(DedalusExploreReport {
                runs_executed,
                reference_converged: ref_converged,
                reference: ref_db,
                divergence: Some(DedalusDivergence {
                    plan: min_plan,
                    found_at_run: i,
                    shrink_steps,
                    converged,
                }),
            });
        }
    }
    Ok(DedalusExploreReport {
        runs_executed,
        reference_converged: ref_converged,
        reference: ref_db,
        divergence: None,
    })
}

//! Fault sessions: a `(FaultPlan, seed)` pair driving an executor.
//!
//! [`FaultSession`] adapts a plan to `rtx_net`'s [`FaultHook`] so the
//! round-synchronous executor (serial or sharded, batched or not) runs
//! under it — see [`run_round_faulted`]. [`run_scheduled_faulted`]
//! drives the seed's fine-grained scheduler-based executor under the
//! same plan, with scheduling units being *steps* instead of rounds, so
//! fault plans compose over **both** executors.

use crate::plan::FaultPlan;
use rtx_net::fault::{FaultHook, NodeFault, SendFate};
use rtx_net::{
    run_auto_faulted, Configuration, HorizontalPartition, NetError, Network, NodeId, RunBudget,
    RunOutcome, Scheduler, ShardOptions, ShardRunOutcome,
};
use rtx_relational::{Fact, Relation};
use rtx_transducer::Transducer;
use std::collections::BTreeMap;

/// A plan plus a seed: everything needed to replay a faulted run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSession {
    /// What can go wrong.
    pub plan: FaultPlan,
    /// Which of it actually goes wrong.
    pub seed: u64,
}

impl FaultSession {
    /// Pair a plan with a seed.
    pub fn new(plan: FaultPlan, seed: u64) -> FaultSession {
        FaultSession { plan, seed }
    }
}

impl FaultHook for FaultSession {
    fn on_send(&mut self, time: u64, src: usize, dst: usize, k: usize, fact: &Fact) -> SendFate {
        self.plan.send_fate(self.seed, time, src, dst, k, fact)
    }

    fn node_fault(&mut self, time: u64, node: usize) -> NodeFault {
        self.plan.node_fault_at(time, node)
    }

    fn quiet_after(&self) -> u64 {
        self.plan.node_event_horizon()
    }
}

/// Run the round-based executor under a fault session. Serial ≡
/// sharded bit-identity holds for any session (the hook is consulted
/// only at the coordinator's deterministic merge points), and the run
/// is exactly reproducible from `(net, transducer, partition, opts,
/// budget, plan, seed)`.
///
/// Dispatches through `RTX_NET_EXECUTOR` ([`rtx_net::run_auto_faulted`]):
/// pinning `sparse` drives the whole chaos stack — sessions, the
/// explorer, minimization — through the event-driven executor, whose
/// fault phase re-arms restarted and healed nodes so adversarial plans
/// exercise the parking logic.
pub fn run_round_faulted(
    net: &Network,
    transducer: &Transducer,
    partition: &HorizontalPartition,
    opts: &ShardOptions,
    budget: &RunBudget,
    session: &FaultSession,
) -> Result<ShardRunOutcome, NetError> {
    let mut hook = session.clone();
    run_auto_faulted(net, transducer, partition, opts, budget, &mut hook)
}

/// Run the seed's scheduler-driven executor under a fault session.
///
/// This is deliberately a separate driver rather than a hook threaded
/// through `rtx_net::run`: the faulted semantics differ in kind (steps
/// as scheduling units, down nodes consuming wasted scheduler turns,
/// round-robin heartbeats while copies are in flight), and the seed's
/// driver stays the pristine reference for the paper's semantics. The
/// cost is a second copy of the quiescence/target scaffolding — the
/// confluence tests in this crate compare the two drivers' outputs, so
/// a semantic drift between them fails loudly.
///
/// Scheduling units are **steps** (global transitions), so a plan delay
/// of `d` holds a copy for `d` steps; crash windows are step windows.
/// Semantics mirror the round executor's: a down node skips its
/// scheduled transitions (the step is consumed — the adversary wasted
/// the scheduler's turn), sends are intercepted per copy, matured
/// copies are re-enqueued before each step, and quiescence is declared
/// only on a no-op stability round after the plan's node-event horizon
/// with nothing in flight.
pub fn run_scheduled_faulted(
    net: &Network,
    transducer: &Transducer,
    partition: &HorizontalPartition,
    scheduler: &mut dyn Scheduler,
    budget: &RunBudget,
    session: &FaultSession,
) -> Result<RunOutcome, NetError> {
    let mut cfg = Configuration::initial(net, transducer, partition)?;
    let nodes: Vec<NodeId> = net.nodes().cloned().collect();
    let index: BTreeMap<&NodeId, usize> = nodes.iter().enumerate().map(|(i, n)| (n, i)).collect();
    let arity = transducer.schema().output_arity();
    let mut outputs_per_node: BTreeMap<NodeId, Relation> =
        nodes.iter().map(|n| (*n, Relation::empty(arity))).collect();
    let mut output = Relation::empty(arity);
    let mut steps = 0usize;
    let mut heartbeats = 0usize;
    let mut deliveries = 0usize;
    let mut messages_enqueued = 0usize;
    let mut quiescent = false;
    let mut reached_target = false;
    // In-flight copies: maturity step → (destination, fact).
    let mut held: BTreeMap<u64, Vec<(NodeId, Fact)>> = BTreeMap::new();
    // Crash bookkeeping: whether each node's current down-phase already
    // dropped its buffer (CrashNow must fire once per crash event).
    let mut down = vec![false; nodes.len()];
    let horizon = session.plan.node_event_horizon();

    let absorb = |rec: &rtx_net::TransitionRecord,
                  output: &mut Relation,
                  outputs_per_node: &mut BTreeMap<NodeId, Relation>|
     -> Result<bool, NetError> {
        let new_out = !rec.output.is_subset(output);
        *output = output.union(&rec.output).map_err(NetError::Rel)?;
        let per = outputs_per_node.get_mut(&rec.node).expect("known node");
        *per = per.union(&rec.output).map_err(NetError::Rel)?;
        Ok(new_out)
    };

    'outer: while steps < budget.max_steps {
        let now = steps as u64;
        if let Some(target) = &budget.target_output {
            if !target.is_empty() && &output == target {
                reached_target = true;
                break;
            }
        }
        // Fault bookkeeping at this step: release matured copies, then
        // resolve node statuses.
        let due: Vec<u64> = held.range(..=now).map(|(k, _)| *k).collect();
        for k in due {
            for (dst, fact) in held.remove(&k).unwrap_or_default() {
                cfg.enqueue_fact(&dst, fact)?;
            }
        }
        for (i, n) in nodes.iter().enumerate() {
            match session.plan.node_fault_at(now, i) {
                NodeFault::Up => down[i] = false,
                NodeFault::CrashNow { lose_buffer } => {
                    if lose_buffer && !down[i] {
                        cfg.clear_buffer(n)?;
                    }
                    down[i] = true;
                }
                NodeFault::Down => down[i] = true,
                NodeFault::RestartNow { wipe_memory } => {
                    if wipe_memory && down[i] {
                        cfg.wipe_memory(transducer, n)?;
                    }
                    down[i] = false;
                }
            }
        }

        let inert = held.is_empty() && now > horizon && down.iter().all(|d| !d);
        if cfg.all_buffers_empty() && inert {
            // Stability round, exactly as in the plain driver: if a
            // whole round of heartbeats is a no-op, the configuration
            // repeats forever. Heartbeat sends still go through the
            // interceptor (a delayed copy breaks stability via `held`).
            let mut all_quiet = true;
            for n in net.node_set() {
                if steps >= budget.max_steps {
                    break 'outer;
                }
                let src = index[&n];
                let t = steps as u64;
                let mut delayed: Vec<(NodeId, u64, Fact)> = Vec::new();
                let mut intercept = |_s: &NodeId, d: &NodeId, k: usize, f: &Fact| {
                    session.plan.send_fate(session.seed, t, src, index[d], k, f)
                };
                let rec = cfg.apply_heartbeat_intercepted(
                    net,
                    transducer,
                    &n,
                    &mut intercept,
                    &mut delayed,
                )?;
                steps += 1;
                heartbeats += 1;
                messages_enqueued += rec.enqueued;
                for (dst, d, f) in delayed {
                    held.entry(t + d).or_default().push((dst, f));
                }
                let new_out = absorb(&rec, &mut output, &mut outputs_per_node)?;
                if rec.state_changed || rec.sent_facts > 0 || new_out {
                    all_quiet = false;
                }
            }
            if all_quiet && held.is_empty() {
                quiescent = true;
                break;
            }
            continue;
        }

        // One scheduled transition. When every buffer is empty but the
        // run is not inert (copies in flight or nodes down), burn a
        // heartbeat round-robin style instead of consulting the
        // scheduler with no mail anywhere.
        let action = if cfg.all_buffers_empty() {
            rtx_net::Action::Heartbeat(nodes[steps % nodes.len()])
        } else {
            scheduler.next_action(&cfg, net)
        };
        let (node, delivery_index) = match &action {
            rtx_net::Action::Heartbeat(n) => (*n, None),
            rtx_net::Action::Deliver(n, idx) => (*n, Some(*idx)),
        };
        let src = index[&node];
        if down[src] {
            // The adversary wasted this scheduler turn on a dead node.
            steps += 1;
            continue;
        }
        let t = steps as u64;
        let mut delayed: Vec<(NodeId, u64, Fact)> = Vec::new();
        let mut intercept = |_s: &NodeId, d: &NodeId, k: usize, f: &Fact| {
            session.plan.send_fate(session.seed, t, src, index[d], k, f)
        };
        let rec = match delivery_index {
            None => {
                heartbeats += 1;
                cfg.apply_heartbeat_intercepted(
                    net,
                    transducer,
                    &node,
                    &mut intercept,
                    &mut delayed,
                )?
            }
            Some(idx) => {
                deliveries += 1;
                cfg.apply_delivery_intercepted(
                    net,
                    transducer,
                    &node,
                    idx,
                    &mut intercept,
                    &mut delayed,
                )?
            }
        };
        steps += 1;
        messages_enqueued += rec.enqueued;
        for (dst, d, f) in delayed {
            held.entry(t + d).or_default().push((dst, f));
        }
        absorb(&rec, &mut output, &mut outputs_per_node)?;
    }

    if let Some(target) = &budget.target_output {
        if &output == target && (quiescent || !target.is_empty()) {
            reached_target = true;
        }
    }

    Ok(RunOutcome {
        output,
        outputs_per_node,
        steps,
        heartbeats,
        deliveries,
        messages_enqueued,
        quiescent,
        reached_target,
        final_config: cfg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Crash, CrashKind, LinkFaults, Partition};
    use rtx_net::{run, FifoRoundRobin};
    use rtx_query::{atom, CqBuilder, QueryRef, Term, UcqQuery};
    use rtx_relational::{fact, Instance, Schema};
    use rtx_transducer::TransducerBuilder;
    use std::sync::Arc;

    fn cq(rule: rtx_query::CqRule) -> QueryRef {
        Arc::new(UcqQuery::single(rule))
    }

    /// The dedup flooder used across the workspace's executor tests.
    fn dedup_flooder() -> Transducer {
        let send = UcqQuery::new(
            1,
            vec![
                CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("S"; @"X"))
                    .unless(atom!("T"; @"X"))
                    .build()
                    .unwrap(),
                CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("M"; @"X"))
                    .unless(atom!("T"; @"X"))
                    .build()
                    .unwrap(),
            ],
        )
        .unwrap();
        let store = UcqQuery::new(
            1,
            vec![
                CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("S"; @"X"))
                    .build()
                    .unwrap(),
                CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("M"; @"X"))
                    .build()
                    .unwrap(),
            ],
        )
        .unwrap();
        TransducerBuilder::new("dedup-flooder")
            .input_relation("S", 1)
            .message_relation("M", 1)
            .memory_relation("T", 1)
            .output_arity(1)
            .send("M", Arc::new(send))
            .insert("T", Arc::new(store))
            .output(cq(CqBuilder::head(vec![Term::var("X")])
                .when(atom!("T"; @"X"))
                .build()
                .unwrap()))
            .build()
            .unwrap()
    }

    fn input_s(vals: &[i64]) -> Instance {
        Instance::from_facts(
            Schema::new().with("S", 1),
            vals.iter().map(|&v| fact!("S", v)).collect::<Vec<_>>(),
        )
        .unwrap()
    }

    fn delay_dup_plan() -> FaultPlan {
        let mut plan = FaultPlan::none();
        plan.default_link = LinkFaults {
            delay: (0, 3),
            dup_millis: 400,
            drop_millis: 0,
        };
        plan.partitions.push(Partition {
            side: [0].into_iter().collect(),
            from: 2,
            heal: 7,
        });
        plan
    }

    #[test]
    fn scheduled_faulted_run_is_replayable_and_confluent_here() {
        let net = Network::ring(5).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[10, 20, 30]));
        let budget = RunBudget::steps(50_000);
        let clean = run(&net, &t, &p, &mut FifoRoundRobin::new(), &budget).unwrap();
        let session = FaultSession::new(delay_dup_plan(), 0xFA57);
        let a = run_scheduled_faulted(&net, &t, &p, &mut FifoRoundRobin::new(), &budget, &session)
            .unwrap();
        let b = run_scheduled_faulted(&net, &t, &p, &mut FifoRoundRobin::new(), &budget, &session)
            .unwrap();
        assert!(a.quiescent, "fair faults cannot prevent quiescence here");
        assert_eq!(a.steps, b.steps, "replay must agree step for step");
        assert_eq!(a.output, b.output);
        assert_eq!(a.final_config, b.final_config);
        assert_eq!(a.output, clean.output, "the flooder is confluent");
    }

    #[test]
    fn round_faulted_run_matches_scheduled_outputs() {
        let net = Network::grid(3, 2).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[1, 2, 3, 4]));
        let budget = RunBudget::steps(100_000);
        let session = FaultSession::new(delay_dup_plan(), 99);
        let round =
            run_round_faulted(&net, &t, &p, &ShardOptions::serial(), &budget, &session).unwrap();
        let sched =
            run_scheduled_faulted(&net, &t, &p, &mut FifoRoundRobin::new(), &budget, &session)
                .unwrap();
        assert!(round.outcome.quiescent && sched.quiescent);
        assert_eq!(round.outcome.output, sched.output);
    }

    #[test]
    fn pause_crash_preserves_everything_on_scheduler_driver() {
        let net = Network::line(4).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[1, 2, 3]));
        let budget = RunBudget::steps(50_000);
        let clean = run(&net, &t, &p, &mut FifoRoundRobin::new(), &budget).unwrap();
        let mut plan = FaultPlan::none();
        plan.crashes.push(Crash {
            node: 1,
            at: 4,
            restart: Some(40),
            kind: CrashKind::Pause,
        });
        let session = FaultSession::new(plan, 1);
        let out =
            run_scheduled_faulted(&net, &t, &p, &mut FifoRoundRobin::new(), &budget, &session)
                .unwrap();
        assert!(out.quiescent);
        assert_eq!(out.output, clean.output);
    }

    #[test]
    fn persistent_edb_crash_wipes_soft_state() {
        // Crash the middle node of a line while it holds forwarded
        // facts: its memory is wiped at restart — on the (non-monotone)
        // dedup flooder this can lose dissemination to one side, but
        // the node's own persistent input is resent after restart.
        let net = Network::line(3).unwrap();
        let t = dedup_flooder();
        let full = input_s(&[7]);
        let p = HorizontalPartition::concentrate(&net, &full, &NodeId::sym("n1")).unwrap();
        let mut plan = FaultPlan::none();
        plan.crashes.push(Crash {
            node: 1,
            at: 2,
            restart: Some(10),
            kind: CrashKind::PersistentEdb,
        });
        let session = FaultSession::new(plan, 3);
        let budget = RunBudget::steps(50_000);
        let out =
            run_scheduled_faulted(&net, &t, &p, &mut FifoRoundRobin::new(), &budget, &session)
                .unwrap();
        assert!(out.quiescent);
        // the owner's own input persists and is re-flooded after the
        // restart, so the fact still reaches everyone
        assert_eq!(out.output.len(), 1);
        for per in out.outputs_per_node.values() {
            assert_eq!(per.len(), 1);
        }
    }
}

//! # rtx-chaos — fault injection, adversarial schedules, and an
//! empirical eventual-consistency checker
//!
//! The paper's central results (CALM: monotone ⟺ coordination-free;
//! consistency of transducer networks) quantify over **all fair runs**
//! of an asynchronous, unordered, duplicating network — but executors
//! on their own only ever realize one tame schedule at a time. This
//! crate turns the quantifier into a test harness:
//!
//! * [`FaultPlan`] — a replayable grammar of adversarial schedules:
//!   per-edge delay/duplication/loss distributions, healing network
//!   partitions, node crash/restarts (pause vs. persistent-EDB
//!   semantics). Every concrete decision is a pure seeded draw, so any
//!   run is exactly reproducible from `(topology, program, FaultPlan,
//!   seed)`.
//! * [`FaultSession`] — a plan + seed driving either executor:
//!   [`run_round_faulted`] composes with `ExecMode::{Serial,Sharded}`
//!   and `DeliveryPolicy::Batch` without breaking the serial ≡ sharded
//!   bit-identity property, and [`run_scheduled_faulted`] drives the
//!   seed's fine-grained scheduler-based executor under the same plan.
//! * [`explore`] — the schedule explorer: N adversarial runs (targeted
//!   heuristics plus seeded random search) with a confluence check
//!   against the fault-free reference, reporting either *consistent
//!   over N runs* or a proptest-shrunk **minimized** diverging pair of
//!   schedules. [`cross_validate`] stresses the CALM classifier's
//!   monotone verdicts against the explorer; [`explore_dedalus`] plays
//!   the same game for Dedalus programs over async fault plans.
//!
//! Environment knobs (all parsed by `rtx-core`): `RTX_CHAOS_RUNS`,
//! `RTX_CHAOS_SEED`.

#![warn(missing_docs)]

mod explore;
mod plan;
mod session;
mod strategy;

pub use explore::{
    cross_validate, directed_edges, explore, explore_dedalus, heuristic_plans, CalmCrossCheck,
    DedalusDivergence, DedalusExploreReport, Divergence, ExploreReport, ExplorerOptions,
};
pub use plan::{Crash, CrashKind, FaultPlan, LinkFaults, Partition};
pub use session::{run_round_faulted, run_scheduled_faulted, FaultSession};
pub use strategy::{Adversary, AsyncPlanStrategy, FaultPlanStrategy};

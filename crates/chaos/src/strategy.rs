//! Proptest strategies over fault plans.
//!
//! The explorer's random search and its divergence minimizer are the
//! same machinery the workspace's property tests use: a
//! [`proptest::Strategy`] generates random adversarial [`FaultPlan`]s,
//! and the compat-proptest greedy shrinker
//! ([`proptest::shrink_failure`]) minimizes a diverging plan by
//! repeatedly proposing *less faulty* candidates (drop a crash, heal a
//! partition earlier, zero a duplication rate, halve a delay) and
//! keeping those that still diverge. The minimum is a plan where every
//! remaining fault is load-bearing for the divergence.

use crate::plan::{Crash, CrashKind, FaultPlan, LinkFaults, Partition};
use proptest::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use rtx_dedalus::AsyncFaultPlan;
use std::collections::BTreeSet;

/// Which space of adversaries the explorer searches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Adversary {
    /// Only **fair** plans: delay, duplication, reordering, healing
    /// partitions, pause-crashes. Every message still arrives and every
    /// node keeps running — exactly the space the paper's consistency
    /// theorems quantify over, so a monotone (hence coordination-free)
    /// program must never diverge under it.
    #[default]
    Fair,
    /// Additionally inject *persistent-EDB* crash/restarts (buffer
    /// dropped, soft state wiped, inputs durable). Outside the
    /// theorems' run space: programs that retransmit monotonically
    /// survive it, send-once protocols generally do not.
    CrashFaulty,
}

/// Random fault plans over a fixed topology.
#[derive(Clone, Debug)]
pub struct FaultPlanStrategy {
    /// Node count of the topology.
    pub nodes: usize,
    /// The directed edges `(src, dst)` of the topology, by node index.
    pub edges: Vec<(usize, usize)>,
    /// Cap on random per-link delays (scheduling units).
    pub max_delay: u32,
    /// Cap on partition/crash window lengths.
    pub max_hold: u64,
    /// Cap on event start times.
    pub horizon: u64,
    /// The adversary space.
    pub adversary: Adversary,
}

impl Strategy for FaultPlanStrategy {
    type Value = FaultPlan;

    fn generate(&self, rng: &mut StdRng) -> FaultPlan {
        let mut plan = FaultPlan::none();
        plan.default_link.delay = (0, rng.gen_range(0..=self.max_delay));
        plan.default_link.dup_millis = [0u16, 0, 250, 1000][rng.gen_range(0..4usize)];
        if !self.edges.is_empty() && rng.gen_bool(0.5) {
            // one starved edge: everything on it is held much longer
            let e = self.edges[rng.gen_range(0..self.edges.len())];
            plan.links.insert(
                e,
                LinkFaults {
                    delay: (self.max_delay, self.max_delay.saturating_mul(2)),
                    ..LinkFaults::default()
                },
            );
        }
        if self.nodes >= 2 && rng.gen_bool(0.5) {
            let mut side = BTreeSet::new();
            for i in 0..self.nodes {
                if rng.gen_bool(0.5) {
                    side.insert(i);
                }
            }
            if side.is_empty() {
                side.insert(rng.gen_range(0..self.nodes));
            }
            if side.len() == self.nodes {
                let first = *side.iter().next().expect("nonempty");
                side.remove(&first);
            }
            let from = rng.gen_range(1..=self.horizon.max(1));
            let heal = from + rng.gen_range(1..=self.max_hold.max(1));
            plan.partitions.push(Partition { side, from, heal });
        }
        let crash_prob = match self.adversary {
            Adversary::Fair => 0.3,
            Adversary::CrashFaulty => 0.6,
        };
        if rng.gen_bool(crash_prob) {
            let node = rng.gen_range(0..self.nodes.max(1));
            let at = rng.gen_range(1..=self.horizon.max(1));
            let restart = Some(at + rng.gen_range(1..=self.max_hold.max(1)));
            let kind = match self.adversary {
                Adversary::Fair => CrashKind::Pause,
                Adversary::CrashFaulty => {
                    if rng.gen_bool(0.5) {
                        CrashKind::PersistentEdb
                    } else {
                        CrashKind::Pause
                    }
                }
            };
            plan.crashes.push(Crash {
                node,
                at,
                restart,
                kind,
            });
        }
        plan
    }

    fn shrink(&self, plan: &FaultPlan) -> Vec<FaultPlan> {
        let mut out: Vec<FaultPlan> = Vec::new();
        // Aggressive first: drop whole fault components.
        if !plan.crashes.is_empty() {
            let mut p = plan.clone();
            p.crashes.pop();
            out.push(p);
        }
        if !plan.partitions.is_empty() {
            let mut p = plan.clone();
            p.partitions.pop();
            out.push(p);
        }
        for key in plan.links.keys().cloned().collect::<Vec<_>>() {
            let mut p = plan.clone();
            p.links.remove(&key);
            out.push(p);
        }
        // Then soften what remains.
        for (i, c) in plan.crashes.iter().enumerate() {
            if c.kind == CrashKind::PersistentEdb {
                let mut p = plan.clone();
                p.crashes[i].kind = CrashKind::Pause;
                out.push(p);
            }
            let window = c.restart.map(|r| r.saturating_sub(c.at)).unwrap_or(0);
            if window > 1 {
                let mut p = plan.clone();
                p.crashes[i].restart = Some(c.at + window / 2);
                out.push(p);
            }
        }
        for (i, part) in plan.partitions.iter().enumerate() {
            if part.heal - part.from > 1 {
                let mut p = plan.clone();
                p.partitions[i].heal = part.from + (part.heal - part.from) / 2;
                out.push(p);
            }
            if part.side.len() > 1 {
                let mut p = plan.clone();
                let first = *part.side.iter().next().expect("nonempty");
                p.partitions[i].side.remove(&first);
                out.push(p);
            }
        }
        if plan.default_link.dup_millis > 0 {
            let mut p = plan.clone();
            p.default_link.dup_millis = 0;
            out.push(p);
        }
        if plan.default_link.delay.1 > 0 {
            let mut p = plan.clone();
            p.default_link.delay = (0, 0);
            out.push(p);
            if plan.default_link.delay.1 > 1 {
                let mut p = plan.clone();
                p.default_link.delay.1 /= 2;
                p.default_link.delay.0 = p.default_link.delay.0.min(p.default_link.delay.1);
                out.push(p);
            }
        }
        out
    }
}

/// Random async fault plans for Dedalus programs.
#[derive(Clone, Copy, Debug)]
pub struct AsyncPlanStrategy {
    /// Cap on the random extra delay range.
    pub max_extra: u64,
}

impl Strategy for AsyncPlanStrategy {
    type Value = AsyncFaultPlan;

    fn generate(&self, rng: &mut StdRng) -> AsyncFaultPlan {
        AsyncFaultPlan {
            seed: rng.next_u64(),
            extra_delay: (0, rng.gen_range(0..=self.max_extra)),
            dup_millis: [0u16, 500, 1000][rng.gen_range(0..3usize)],
        }
    }

    fn shrink(&self, plan: &AsyncFaultPlan) -> Vec<AsyncFaultPlan> {
        let mut out = Vec::new();
        if plan.dup_millis > 0 {
            out.push(AsyncFaultPlan {
                dup_millis: 0,
                ..*plan
            });
        }
        if plan.extra_delay.1 > 0 {
            out.push(AsyncFaultPlan {
                extra_delay: (0, 0),
                ..*plan
            });
            if plan.extra_delay.1 > 1 {
                out.push(AsyncFaultPlan {
                    extra_delay: (0, plan.extra_delay.1 / 2),
                    ..*plan
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn strat() -> FaultPlanStrategy {
        FaultPlanStrategy {
            nodes: 4,
            edges: vec![(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)],
            max_delay: 4,
            max_hold: 6,
            horizon: 5,
            adversary: Adversary::Fair,
        }
    }

    #[test]
    fn generated_fair_plans_are_fair_and_bounded() {
        let s = strat();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let p = s.generate(&mut rng);
            assert!(p.is_fair(), "{p}");
            assert!(p.default_link.delay.1 <= 4);
            for part in &p.partitions {
                assert!(!part.side.is_empty() && part.side.len() < 4);
                assert!(part.heal > part.from);
                assert!(part.heal - part.from <= 6);
            }
            for c in &p.crashes {
                assert!(c.restart.is_some());
                assert_eq!(c.kind, CrashKind::Pause);
            }
        }
    }

    #[test]
    fn crash_faulty_plans_eventually_wipe() {
        let s = FaultPlanStrategy {
            adversary: Adversary::CrashFaulty,
            ..strat()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw_wipe = false;
        for _ in 0..200 {
            let p = s.generate(&mut rng);
            saw_wipe |= p.crashes.iter().any(|c| c.kind == CrashKind::PersistentEdb);
        }
        assert!(saw_wipe, "the crash-faulty adversary must exercise wipes");
    }

    #[test]
    fn shrink_moves_toward_the_empty_plan() {
        let s = strat();
        let mut rng = StdRng::seed_from_u64(5);
        // find a plan with every component populated
        let mut plan = None;
        for _ in 0..500 {
            let p = s.generate(&mut rng);
            if !p.crashes.is_empty() && !p.partitions.is_empty() && !p.links.is_empty() {
                plan = Some(p);
                break;
            }
        }
        let plan = plan.expect("the generator populates all components");
        // greedily accept every candidate: must reach the empty plan
        let mut cur = plan;
        let mut steps = 0;
        while let Some(next) = s.shrink(&cur).into_iter().next() {
            assert_ne!(next, cur, "shrink candidates must differ");
            cur = next;
            steps += 1;
            assert!(steps < 100, "shrinking must terminate");
        }
        assert!(cur.is_none(), "fully shrunk plan is the empty plan: {cur}");
    }

    #[test]
    fn async_strategy_generates_and_shrinks() {
        let s = AsyncPlanStrategy { max_extra: 5 };
        let mut rng = StdRng::seed_from_u64(1);
        let p = s.generate(&mut rng);
        assert!(p.extra_delay.1 <= 5);
        let worst = AsyncFaultPlan {
            seed: 9,
            extra_delay: (0, 4),
            dup_millis: 1000,
        };
        let mut cur = worst;
        let mut steps = 0;
        while let Some(next) = s.shrink(&cur).into_iter().next() {
            cur = next;
            steps += 1;
            assert!(steps < 20);
        }
        assert_eq!(cur.dup_millis, 0);
        assert_eq!(cur.extra_delay, (0, 0));
    }
}

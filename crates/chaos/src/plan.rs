//! Fault plans: the replayable grammar of adversarial schedules.
//!
//! A [`FaultPlan`] describes *what can go wrong* — per-edge message
//! delay/duplication/loss distributions, healing network partitions,
//! and node crash/restart events — while a seed fixes *what actually
//! goes wrong*: every concrete decision is a pure [splitmix64] draw
//! keyed by `(seed, time, edge, send index, fact)`, so any run is
//! exactly reproducible from `(topology, program, FaultPlan, seed)`.
//! No mutable RNG stream exists anywhere in the fault layer; replay
//! determinism is by construction, not by careful state management.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c

use rtx_net::fault::{NodeFault, SendFate};
use rtx_relational::Fact;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Per-directed-edge message fault distribution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkFaults {
    /// Extra delivery delay in scheduling units, drawn uniformly from
    /// this inclusive range.
    pub delay: (u32, u32),
    /// Per-mille probability that a message copy is duplicated (the
    /// extra copy draws its own independent delay).
    pub dup_millis: u16,
    /// Per-mille probability that a message is dropped. **Fairness
    /// violating** — the paper's network duplicates and reorders but
    /// never loses; the explorer's default adversary keeps this 0.
    pub drop_millis: u16,
}

impl LinkFaults {
    /// No faults on this link.
    pub fn none() -> LinkFaults {
        LinkFaults::default()
    }

    /// A fixed deterministic delay.
    pub fn delayed(d: u32) -> LinkFaults {
        LinkFaults {
            delay: (d, d),
            ..LinkFaults::default()
        }
    }

    /// Is this the fault-free distribution?
    pub fn is_none(&self) -> bool {
        *self == LinkFaults::default()
    }
}

/// A healing network partition: while `from <= time < heal`, messages
/// crossing the cut between `side` and the rest of the nodes are held
/// in flight and released at `heal` (plus the link's own delay draw).
/// Partitions *delay*, never drop — healing keeps runs fair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Node indices on one side of the cut.
    pub side: BTreeSet<usize>,
    /// First scheduling unit of the outage.
    pub from: u64,
    /// The healing unit: held messages are released here.
    pub heal: u64,
}

impl Partition {
    /// Does this partition sever the directed edge `src → dst` at `time`?
    pub fn severs(&self, time: u64, src: usize, dst: usize) -> bool {
        time >= self.from
            && time < self.heal
            && (self.side.contains(&src) != self.side.contains(&dst))
    }
}

/// What a crash destroys.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashKind {
    /// A pause: the node stops transitioning but loses nothing —
    /// buffer and full state survive. Fair.
    Pause,
    /// The *persistent-EDB* semantics: the input fragment and `Id`/`All`
    /// are durable, but the node's buffered messages are dropped at the
    /// crash and its memory relations (soft state) are wiped at the
    /// restart.
    PersistentEdb,
}

/// A node crash event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Crash {
    /// The crashed node's index.
    pub node: usize,
    /// The crash unit (the node misses this unit onward).
    pub at: u64,
    /// The restart unit; `None` leaves the node down forever (fairness
    /// violating).
    pub restart: Option<u64>,
    /// What the crash destroys.
    pub kind: CrashKind,
}

/// A composable description of everything that goes wrong in a run.
///
/// The empty plan ([`FaultPlan::none`]) injects nothing: under it the
/// faulted executors behave bit-identically to the plain ones.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The fault distribution of every directed edge without an
    /// override.
    pub default_link: LinkFaults,
    /// Per-directed-edge overrides, keyed by `(src, dst)` node indices.
    pub links: BTreeMap<(usize, usize), LinkFaults>,
    /// Healing partitions.
    pub partitions: Vec<Partition>,
    /// Crash/restart events.
    pub crashes: Vec<Crash>,
}

impl FaultPlan {
    /// The empty plan: no faults at all.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Is this the empty plan?
    pub fn is_none(&self) -> bool {
        self.default_link.is_none()
            && self.links.values().all(LinkFaults::is_none)
            && self.partitions.is_empty()
            && self.crashes.is_empty()
    }

    /// The fault distribution of the directed edge `src → dst`.
    pub fn link(&self, src: usize, dst: usize) -> &LinkFaults {
        self.links.get(&(src, dst)).unwrap_or(&self.default_link)
    }

    /// Is the plan **fair** — does every message eventually arrive and
    /// every node eventually transition again, with nothing lost? Fair
    /// plans (delay, duplication, reordering, healing partitions,
    /// pause-crashes) stay inside the space of runs the paper's
    /// consistency theorems quantify over; unfair ones (drops,
    /// permanent crashes, soft-state loss) model real failures the
    /// theorems do not cover.
    pub fn is_fair(&self) -> bool {
        self.default_link.drop_millis == 0
            && self.links.values().all(|l| l.drop_millis == 0)
            && self
                .crashes
                .iter()
                .all(|c| c.restart.is_some() && c.kind == CrashKind::Pause)
    }

    /// The last scheduling unit with a node fault event (0 when there
    /// are none): executors must not declare quiescence before it.
    pub fn node_event_horizon(&self) -> u64 {
        self.crashes
            .iter()
            .map(|c| c.restart.unwrap_or(c.at))
            .max()
            .unwrap_or(0)
    }

    /// The status of `node` at `time` (first matching crash wins).
    pub fn node_fault_at(&self, time: u64, node: usize) -> NodeFault {
        for c in self.crashes.iter().filter(|c| c.node == node) {
            let lossy = c.kind == CrashKind::PersistentEdb;
            if time == c.at {
                return NodeFault::CrashNow { lose_buffer: lossy };
            }
            match c.restart {
                Some(r) if time == r => return NodeFault::RestartNow { wipe_memory: lossy },
                Some(r) if time > c.at && time < r => return NodeFault::Down,
                None if time > c.at => return NodeFault::Down,
                _ => {}
            }
        }
        NodeFault::Up
    }

    /// The fate of the `k`-th fact sent on `src → dst` at `time`, under
    /// `seed`. Pure: same arguments, same fate, forever.
    pub fn send_fate(
        &self,
        seed: u64,
        time: u64,
        src: usize,
        dst: usize,
        k: usize,
        fact: &Fact,
    ) -> SendFate {
        let lf = self.link(src, dst);
        // One independent sub-draw per decision, keyed by a salt.
        let draw = |salt: u64| {
            mix(&[
                seed,
                time,
                src as u64,
                dst as u64,
                k as u64,
                fact_key(fact),
                salt,
            ])
        };
        if lf.drop_millis > 0 && draw(0) % 1000 < lf.drop_millis as u64 {
            return SendFate::dropped();
        }
        // Messages crossing an active partition are held until the
        // latest heal among the active cuts, then subject to the link's
        // own delay.
        let hold = self
            .partitions
            .iter()
            .filter(|p| p.severs(time, src, dst))
            .map(|p| p.heal - time)
            .max()
            .unwrap_or(0);
        let link_delay = |salt: u64| -> u64 {
            let (lo, hi) = lf.delay;
            if hi <= lo {
                lo as u64
            } else {
                lo as u64 + draw(salt) % (hi as u64 - lo as u64 + 1)
            }
        };
        let mut delays = vec![hold + link_delay(1)];
        if lf.dup_millis > 0 && draw(2) % 1000 < lf.dup_millis as u64 {
            delays.push(hold + link_delay(3));
        }
        SendFate::copies(delays)
    }
}

impl fmt::Display for FaultPlan {
    /// The human-readable plan grammar, as printed by the explorer:
    /// `link[*]` is the default edge distribution, `link[s->d]` an
    /// override, `cut{..}@[a,b)` a healing partition, and
    /// `crash(n@a..b, kind)` a crash/restart event.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return write!(f, "no-faults");
        }
        let mut parts: Vec<String> = Vec::new();
        let link_str = |l: &LinkFaults| {
            let mut s = format!("delay {}..={}", l.delay.0, l.delay.1);
            if l.dup_millis > 0 {
                s.push_str(&format!(", dup {}‰", l.dup_millis));
            }
            if l.drop_millis > 0 {
                s.push_str(&format!(", drop {}‰", l.drop_millis));
            }
            s
        };
        if !self.default_link.is_none() {
            parts.push(format!("link[*]({})", link_str(&self.default_link)));
        }
        for ((s, d), l) in &self.links {
            if !l.is_none() {
                parts.push(format!("link[{s}->{d}]({})", link_str(l)));
            }
        }
        for p in &self.partitions {
            let side: Vec<String> = p.side.iter().map(|i| i.to_string()).collect();
            parts.push(format!("cut{{{}}}@[{},{})", side.join(","), p.from, p.heal));
        }
        for c in &self.crashes {
            let until = c
                .restart
                .map(|r| r.to_string())
                .unwrap_or_else(|| "∞".into());
            let kind = match c.kind {
                CrashKind::Pause => "pause",
                CrashKind::PersistentEdb => "persistent-edb",
            };
            parts.push(format!("crash({}@{}..{}, {})", c.node, c.at, until, kind));
        }
        write!(f, "{}", parts.join(" + "))
    }
}

/// The shared splitmix64 fold (see [`rtx_core::mix`]).
pub(crate) fn mix(parts: &[u64]) -> u64 {
    rtx_core::mix::fold(parts)
}

/// A stable, allocation-free key for a fact (FNV-1a over its relation
/// name and values, with per-field type tags), so two different facts
/// sent at the same `(time, edge, k)` point draw independent fates.
fn fact_key(fact: &Fact) -> u64 {
    const FNV_PRIME: u64 = 0x100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut byte = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    };
    for b in fact.rel().as_str().bytes() {
        byte(b);
    }
    for v in fact.tuple().values() {
        match v {
            rtx_relational::Value::Int(i) => {
                byte(1);
                for b in i.to_le_bytes() {
                    byte(b);
                }
            }
            rtx_relational::Value::Sym(s) => {
                byte(2);
                for b in s.bytes() {
                    byte(b);
                }
                byte(0); // terminator: ("ab","c") ≠ ("a","bc")
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_relational::fact;

    #[test]
    fn empty_plan_is_fair_and_prompt() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert!(p.is_fair());
        assert_eq!(p.node_event_horizon(), 0);
        let f = fact!("M", 1);
        assert!(p.send_fate(7, 3, 0, 1, 0, &f).is_prompt_single());
        assert_eq!(p.node_fault_at(5, 0), NodeFault::Up);
    }

    #[test]
    fn send_fate_is_replayable() {
        let mut plan = FaultPlan::none();
        plan.default_link = LinkFaults {
            delay: (0, 4),
            dup_millis: 500,
            drop_millis: 0,
        };
        let f = fact!("M", 42);
        for time in 0..20 {
            for k in 0..3 {
                let a = plan.send_fate(0xC0FFEE, time, 0, 1, k, &f);
                let b = plan.send_fate(0xC0FFEE, time, 0, 1, k, &f);
                assert_eq!(a, b, "pure draws must replay");
                for &d in &a.delays {
                    assert!(d <= 4);
                }
                assert!(!a.delays.is_empty(), "no drops configured");
                assert!(a.delays.len() <= 2);
            }
        }
    }

    #[test]
    fn different_seeds_vary_the_fates() {
        let mut plan = FaultPlan::none();
        plan.default_link.delay = (0, 8);
        let f = fact!("M", 1);
        let fates: BTreeSet<u64> = (0..64)
            .map(|s| plan.send_fate(s, 1, 0, 1, 0, &f).delays[0])
            .collect();
        assert!(fates.len() > 1, "seed must influence the delay draw");
    }

    #[test]
    fn partitions_hold_until_heal() {
        let mut plan = FaultPlan::none();
        plan.partitions.push(Partition {
            side: [0].into_iter().collect(),
            from: 2,
            heal: 6,
        });
        let f = fact!("M", 1);
        // inside the outage, crossing edges are held until heal
        let fate = plan.send_fate(1, 3, 0, 1, 0, &f);
        assert_eq!(fate.delays, vec![3]); // 6 - 3
                                          // non-crossing edges and times outside the window are prompt
        assert!(plan.send_fate(1, 3, 1, 2, 0, &f).is_prompt_single());
        assert!(plan.send_fate(1, 6, 0, 1, 0, &f).is_prompt_single());
        assert!(plan.send_fate(1, 1, 0, 1, 0, &f).is_prompt_single());
        assert!(plan.is_fair(), "healing partitions are fair");
    }

    #[test]
    fn drops_and_permanent_crashes_are_unfair() {
        let mut plan = FaultPlan::none();
        plan.default_link.drop_millis = 1000;
        assert!(!plan.is_fair());
        let f = fact!("M", 1);
        assert_eq!(plan.send_fate(1, 1, 0, 1, 0, &f), SendFate::dropped());

        let mut plan = FaultPlan::none();
        plan.crashes.push(Crash {
            node: 1,
            at: 3,
            restart: None,
            kind: CrashKind::Pause,
        });
        assert!(!plan.is_fair());
        let mut plan = FaultPlan::none();
        plan.crashes.push(Crash {
            node: 1,
            at: 3,
            restart: Some(5),
            kind: CrashKind::PersistentEdb,
        });
        assert!(!plan.is_fair(), "soft-state loss is outside the theorems");
        plan.crashes[0].kind = CrashKind::Pause;
        assert!(plan.is_fair(), "pause crashes with restart are fair");
    }

    #[test]
    fn crash_schedule_resolves_statuses() {
        let mut plan = FaultPlan::none();
        plan.crashes.push(Crash {
            node: 2,
            at: 3,
            restart: Some(6),
            kind: CrashKind::PersistentEdb,
        });
        assert_eq!(plan.node_fault_at(2, 2), NodeFault::Up);
        assert_eq!(
            plan.node_fault_at(3, 2),
            NodeFault::CrashNow { lose_buffer: true }
        );
        assert_eq!(plan.node_fault_at(4, 2), NodeFault::Down);
        assert_eq!(plan.node_fault_at(5, 2), NodeFault::Down);
        assert_eq!(
            plan.node_fault_at(6, 2),
            NodeFault::RestartNow { wipe_memory: true }
        );
        assert_eq!(plan.node_fault_at(7, 2), NodeFault::Up);
        assert_eq!(plan.node_event_horizon(), 6);
        // other nodes unaffected
        assert_eq!(plan.node_fault_at(4, 1), NodeFault::Up);
    }

    #[test]
    fn grammar_renders() {
        let mut plan = FaultPlan::none();
        assert_eq!(plan.to_string(), "no-faults");
        plan.default_link = LinkFaults {
            delay: (1, 3),
            dup_millis: 250,
            drop_millis: 0,
        };
        plan.links.insert((0, 1), LinkFaults::delayed(9));
        plan.partitions.push(Partition {
            side: [0, 2].into_iter().collect(),
            from: 1,
            heal: 4,
        });
        plan.crashes.push(Crash {
            node: 1,
            at: 2,
            restart: Some(5),
            kind: CrashKind::Pause,
        });
        let s = plan.to_string();
        assert!(s.contains("link[*](delay 1..=3, dup 250‰)"), "{s}");
        assert!(s.contains("link[0->1](delay 9..=9)"), "{s}");
        assert!(s.contains("cut{0,2}@[1,4)"), "{s}");
        assert!(s.contains("crash(1@2..5, pause)"), "{s}");
    }
}

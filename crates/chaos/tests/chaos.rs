//! The chaos subsystem's acceptance properties:
//!
//! * replay determinism — any explorer-reported run is exactly
//!   reproducible from `(FaultPlan, seed)`;
//! * serial ≡ sharded bit-identity holds with fault injection enabled,
//!   for every thread count and delivery batching;
//! * crashed-then-restarted nodes with persistent EDB reach the same
//!   quiescent output as an uncrashed run for monotone programs, on
//!   both executors;
//! * the explorer finds no divergence across ≥ 200 seeded adversarial
//!   runs for the repo's monotone example programs, and finds + shrinks
//!   a diverging schedule pair for a known coordination-requiring one.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtx_calm::examples;
use rtx_chaos::{
    cross_validate, directed_edges, explore, explore_dedalus, run_round_faulted,
    run_scheduled_faulted, Adversary, Crash, CrashKind, ExplorerOptions, FaultPlan,
    FaultPlanStrategy, FaultSession,
};
use rtx_dedalus::{DRule, DTime, DedalusOptions, DedalusProgram, TemporalFacts};
use rtx_net::{
    run_sharded, DeliveryPolicy, FifoRoundRobin, HorizontalPartition, Network, RunBudget,
    ShardOptions,
};
use rtx_query::atom;
use rtx_relational::{fact, Instance, Schema};

fn input_s1(vals: &[i64]) -> Instance {
    Instance::from_facts(
        Schema::new().with("S", 1),
        vals.iter().map(|&v| fact!("S", v)).collect::<Vec<_>>(),
    )
    .unwrap()
}

fn input_s2(pairs: &[(i64, i64)]) -> Instance {
    Instance::from_facts(
        Schema::new().with("S", 2),
        pairs
            .iter()
            .map(|&(a, b)| fact!("S", a, b))
            .collect::<Vec<_>>(),
    )
    .unwrap()
}

fn strategy_for(net: &Network, adversary: Adversary) -> FaultPlanStrategy {
    FaultPlanStrategy {
        nodes: net.len(),
        edges: directed_edges(net),
        max_delay: 4,
        max_hold: 6,
        horizon: 5,
        adversary,
    }
}

/// Draw a random fair plan from a seed (for the proptest properties,
/// whose strategies must be `proptest` strategies — we tunnel the plan
/// through its generating seed so shrinking works on the seed space).
fn random_plan(net: &Network, adversary: Adversary, plan_seed: u64) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(plan_seed);
    strategy_for(net, adversary).generate(&mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Acceptance: replay determinism. A faulted run is a pure function
    /// of `(topology, program, partition, FaultPlan, seed)` — bit for
    /// bit, including the transition log.
    #[test]
    fn faulted_runs_replay_bit_for_bit(plan_seed in 0u64..1_000_000, seed in 0u64..1_000_000) {
        let net = Network::ring(5).unwrap();
        let t = examples::ex3_transitive_closure(true).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input_s2(&[(1, 2), (2, 3), (3, 4)]));
        let plan = random_plan(&net, Adversary::CrashFaulty, plan_seed);
        let session = FaultSession::new(plan, seed);
        let opts = ShardOptions::serial().with_log();
        let budget = RunBudget::steps(60_000);
        let a = run_round_faulted(&net, &t, &p, &opts, &budget, &session).unwrap();
        let b = run_round_faulted(&net, &t, &p, &opts, &budget, &session).unwrap();
        prop_assert_eq!(a.log.as_ref(), b.log.as_ref());
        prop_assert_eq!(&a.outcome.final_config, &b.outcome.final_config);
        prop_assert_eq!(&a.outcome.output, &b.outcome.output);
        prop_assert_eq!(a.outcome.steps, b.outcome.steps);
    }

    /// Acceptance: serial ≡ sharded bit-identity with fault injection
    /// enabled, across thread counts and delivery batching.
    #[test]
    fn serial_sharded_identity_under_faults(plan_seed in 0u64..1_000_000, seed in 0u64..1_000_000) {
        let net = Network::grid(3, 2).unwrap();
        let t = examples::ex3_transitive_closure(true).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input_s2(&[(1, 2), (2, 3), (1, 4)]));
        let plan = random_plan(&net, Adversary::CrashFaulty, plan_seed);
        let session = FaultSession::new(plan, seed);
        let budget = RunBudget::steps(60_000);
        for delivery in [DeliveryPolicy::One, DeliveryPolicy::Batch(4)] {
            let serial_opts = ShardOptions::serial().with_delivery(delivery).with_log();
            let serial = run_round_faulted(&net, &t, &p, &serial_opts, &budget, &session).unwrap();
            for threads in [2usize, 4] {
                let opts = ShardOptions::sharded(threads).with_delivery(delivery).with_log();
                let sharded = run_round_faulted(&net, &t, &p, &opts, &budget, &session).unwrap();
                prop_assert_eq!(sharded.log.as_ref(), serial.log.as_ref(),
                    "threads={} delivery={:?}", threads, delivery);
                prop_assert_eq!(&sharded.outcome.final_config, &serial.outcome.final_config);
                prop_assert_eq!(sharded.rounds, serial.rounds);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite: a crashed-then-restarted node with persistent EDB
    /// reaches the same quiescent output as an uncrashed run for
    /// monotone programs, on both executors. The monotone program is
    /// the paper's naive distributed TC (Example 3, unconditional
    /// flooding): its output quiesces at the global closure even though
    /// its buffers never drain, so the runs compare outputs at the
    /// reference target.
    #[test]
    fn persistent_edb_crash_is_harmless_for_monotone_programs(
        node in 0usize..4,
        at in 1u64..8,
        window in 1u64..8,
        seed in 0u64..1_000_000,
    ) {
        let net = Network::ring(4).unwrap();
        let t = examples::ex3_transitive_closure(false).unwrap();
        prop_assert!(rtx_transducer::Classification::of(&t).monotone);
        let p = HorizontalPartition::round_robin(&net, &input_s2(&[(1, 2), (2, 3), (3, 1)]));
        // fault-free reference: the output converges to the closure
        let reference = run_sharded(
            &net, &t, &p, &ShardOptions::serial(), &RunBudget::steps(4_000),
        ).unwrap();
        prop_assert!(!reference.outcome.output.is_empty());
        let mut plan = FaultPlan::none();
        plan.crashes.push(Crash {
            node,
            at,
            restart: Some(at + window),
            kind: CrashKind::PersistentEdb,
        });
        let session = FaultSession::new(plan, seed);
        let budget = RunBudget::steps(60_000).until_output(reference.outcome.output.clone());
        let round = run_round_faulted(&net, &t, &p, &ShardOptions::serial(), &budget, &session).unwrap();
        prop_assert!(round.outcome.reached_target,
            "round executor must recover the reference output, got {:?}",
            round.outcome.output);
        let sched = run_scheduled_faulted(
            &net, &t, &p, &mut FifoRoundRobin::new(), &budget, &session,
        ).unwrap();
        prop_assert!(sched.reached_target,
            "scheduler executor must recover the reference output, got {:?}",
            sched.output);
    }
}

/// Acceptance: the explorer finds no divergence across ≥ 200 seeded
/// adversarial runs for the repo's monotone example programs.
#[test]
fn explorer_finds_no_divergence_for_monotone_examples() {
    let opts = ExplorerOptions::auto()
        .with_runs(200)
        .with_seed(rtx_core::env::parse_u64("RTX_CHAOS_SEED").unwrap_or(0xCA1A_0005))
        .with_budget(RunBudget::steps(8_000));

    // Example 3a: equality selection (messageless, monotone).
    let net = Network::line(3).unwrap();
    let t = examples::ex3_equality_selection().unwrap();
    let full = input_s2(&[(1, 1), (1, 2), (5, 5)]);
    let p = HorizontalPartition::round_robin(&net, &full);
    let check = cross_validate(&net, &t, &p, &opts).unwrap();
    assert!(check.classification.monotone);
    assert!(
        check.report.consistent(),
        "eq-selection diverged: {:?}",
        check.report.divergence
    );
    assert!(check.agrees());
    assert_eq!(check.report.runs_executed, 200);

    // Example 3b: naive distributed transitive closure (monotone,
    // unconditionally flooding — output quiesces, buffers do not).
    let net = Network::ring(4).unwrap();
    let t = examples::ex3_transitive_closure(false).unwrap();
    let p = HorizontalPartition::round_robin(&net, &input_s2(&[(1, 2), (2, 3), (3, 4)]));
    let check = cross_validate(&net, &t, &p, &opts).unwrap();
    assert!(check.classification.monotone);
    assert!(
        check.report.consistent(),
        "monotone TC diverged under a fair adversary: {:?}",
        check.report.divergence
    );
    assert!(check.agrees());
    assert_eq!(check.report.runs_executed, 200);
    assert_eq!(
        check.report.reference.len(),
        6,
        "closure of the 4-cycle... "
    ); // 1→2,2→3,3→4 edges: closure pairs
}

/// Acceptance: the explorer finds **and shrinks** a diverging schedule
/// pair for a known coordination-requiring program — the paper's
/// Example 2, whose output is the first element each node happens to
/// receive.
#[test]
fn explorer_finds_and_shrinks_divergence_for_first_element() {
    let net = Network::line(3).unwrap();
    let t = examples::ex2_first_element().unwrap();
    let p = HorizontalPartition::round_robin(&net, &input_s1(&[10, 20, 30]));
    let opts = ExplorerOptions::auto()
        .with_runs(200)
        .with_budget(RunBudget::steps(20_000));
    let report = explore(&net, &t, &p, &opts).unwrap();
    let div = report
        .divergence
        .expect("the first-element network must diverge under reordering");
    assert_ne!(div.observed, div.expected, "the pair must actually differ");
    assert!(
        !div.plan.is_none(),
        "some fault must be load-bearing in the minimized plan"
    );
    // The minimized plan must itself still exhibit the divergence —
    // i.e. the reported run replays from (FaultPlan, seed).
    let session = FaultSession::new(div.plan.clone(), div.seed);
    let budget = RunBudget {
        max_steps: opts.budget.max_steps,
        target_output: Some(div.expected.clone()),
    };
    let replay =
        run_round_faulted(&net, &t, &p, &ShardOptions::serial(), &budget, &session).unwrap();
    assert_eq!(
        replay.outcome.output, div.observed,
        "the minimized divergence must replay exactly"
    );
    // The divergence is localized: the witness fact really separates
    // the two outputs, and it is pinned to a concrete replay round.
    let loc = div
        .localization
        .as_ref()
        .expect("a replayable divergence must localize");
    if loc.extra {
        assert!(
            !div.expected.contains(&loc.fact),
            "an extra witness must be absent from the reference"
        );
    } else {
        assert!(
            div.expected.contains(&loc.fact) && !div.observed.contains(&loc.fact),
            "a missing witness must separate expected from observed"
        );
    }
    assert!(loc.round >= 1, "rounds are 1-based in the round executors");
    // And the classifier knows this program is not monotone, so the
    // divergence does not refute CALM.
    let check = cross_validate(&net, &t, &p, &opts.with_runs(40)).unwrap();
    assert!(!check.classification.monotone);
    assert!(check.agrees());
}

/// The consistent-but-nonmonotone examples stay consistent under the
/// fair adversary (the classifier is conservative; the explorer
/// certifies what it cannot).
#[test]
fn fair_adversary_respects_consistent_nonmonotone_examples() {
    let opts = ExplorerOptions::auto()
        .with_runs(48)
        .with_budget(RunBudget::steps(20_000));
    // dedup transitive closure (negation in the send rules)
    let net = Network::line(3).unwrap();
    let t = examples::ex3_transitive_closure(true).unwrap();
    let p = HorizontalPartition::round_robin(&net, &input_s2(&[(1, 2), (2, 3)]));
    let report = explore(&net, &t, &p, &opts).unwrap();
    assert!(report.consistent(), "{:?}", report.divergence);
    assert!(report.reference_quiescent);

    // the echo transducer (consistent per topology)
    let t = examples::ex4_echo().unwrap();
    let p = HorizontalPartition::round_robin(&net, &input_s1(&[7, 8]));
    let report = explore(&net, &t, &p, &opts).unwrap();
    assert!(report.consistent(), "{:?}", report.divergence);
}

/// The Dedalus side of the explorer: a monotone persist-and-close
/// program converges to the same limit database under every async
/// fault plan (reseeded, widened, duplicating), while a first-arrival
/// race diverges — and the diverging plan is shrunk.
#[test]
fn dedalus_explorer_separates_confluent_from_racy_programs() {
    let opts = ExplorerOptions::auto().with_runs(64);
    let base = DedalusOptions {
        max_ticks: 120,
        async_max_delay: 3,
        seed: 0,
        async_faults: None,
    };

    // Confluent: persisted edges arrive over an async channel, the
    // closure is re-derived deductively each tick. Any delivery order
    // reaches the same limit.
    let confluent = DedalusProgram::new(vec![
        DRule::persist("s", 2),
        DRule::persist("sent", 2),
        DRule::persist("e", 2),
        DRule::new(atom!("m"; @"X", @"Y"), DTime::Async)
            .when(atom!("s"; @"X", @"Y"))
            .unless(atom!("sent"; @"X", @"Y")),
        DRule::new(atom!("sent"; @"X", @"Y"), DTime::Next).when(atom!("s"; @"X", @"Y")),
        DRule::new(atom!("e"; @"X", @"Y"), DTime::Same).when(atom!("m"; @"X", @"Y")),
        DRule::new(atom!("t"; @"X", @"Y"), DTime::Same).when(atom!("e"; @"X", @"Y")),
        DRule::new(atom!("t"; @"X", @"Z"), DTime::Same)
            .when(atom!("t"; @"X", @"Y"))
            .when(atom!("e"; @"Y", @"Z")),
    ])
    .unwrap();
    let mut edb = TemporalFacts::new();
    edb.insert(0, fact!("s", 1, 2));
    edb.insert(0, fact!("s", 2, 3));
    edb.insert(1, fact!("s", 3, 4));
    let report = explore_dedalus(&confluent, &edb, &base, &opts).unwrap();
    assert!(report.reference_converged);
    assert!(report.consistent(), "{:?}", report.divergence);
    assert_eq!(report.runs_executed, 64);
    assert!(report.reference.contains_fact(&fact!("t", 1, 4)));

    // Racy: the first arrival wins; different async schedules crown
    // different winners (or joint winners on a tie).
    let racy = DedalusProgram::new(vec![
        DRule::persist("s", 1),
        DRule::persist("sent", 1),
        DRule::persist("won", 1),
        DRule::persist("taken", 0),
        DRule::new(atom!("m"; @"X"), DTime::Async)
            .when(atom!("s"; @"X"))
            .unless(atom!("sent"; @"X")),
        DRule::new(atom!("sent"; @"X"), DTime::Next).when(atom!("s"; @"X")),
        DRule::new(atom!("won"; @"X"), DTime::Next)
            .when(atom!("m"; @"X"))
            .unless(atom!("taken")),
        DRule::new(atom!("taken"), DTime::Next).when(atom!("m"; @"X")),
    ])
    .unwrap();
    let mut edb = TemporalFacts::new();
    edb.insert(0, fact!("s", 1));
    edb.insert(0, fact!("s", 2));
    let report = explore_dedalus(&racy, &edb, &base, &opts).unwrap();
    let div = report
        .divergence
        .expect("the first-arrival race must diverge across async schedules");
    assert!(report.reference_converged);
    // The shrinker always strips duplication: removing a duplicate
    // never changes first-arrival times, so the race outcome survives
    // the candidate and the smaller plan is kept. (Extra delay can be
    // load-bearing for a given seed — the race outcome is a function
    // of the delay draws — so no claim is made about it.)
    assert_eq!(div.plan.dup_millis, 0, "minimized: {:?}", div.plan);
}

/// Send-once protocols are *not* crash-tolerant: a persistent-EDB
/// crash of the bridge node on a line permanently starves the far side
/// of facts the originator will never resend. The **global** output
/// union hides this (every fact's originator outputs it anyway) — the
/// per-node comparison exposes it, which is exactly what
/// `ExplorerOptions::per_node` is for. This is the boundary the CALM
/// theorems draw: soft-state loss is outside the fair-run space, and
/// only monotone, retransmitting programs survive it (see the
/// `persistent_edb_crash_is_harmless_for_monotone_programs` property).
#[test]
fn crash_faulty_adversary_breaks_send_once_dissemination_per_node() {
    let net = Network::line(3).unwrap();
    let t = examples::ex3_transitive_closure(true).unwrap();
    // all input at n0: dissemination must cross the n1 bridge exactly
    // once, because the dedup send rules never retransmit
    let p = HorizontalPartition::concentrate(
        &net,
        &input_s2(&[(1, 2), (2, 3)]),
        &rtx_relational::Value::sym("n0"),
    )
    .unwrap();
    let opts = ExplorerOptions::auto()
        .with_runs(160)
        .with_adversary(Adversary::CrashFaulty)
        .with_budget(RunBudget::steps(20_000))
        .per_node();
    let report = explore(&net, &t, &p, &opts).unwrap();
    let div = report
        .divergence
        .expect("a persistent-EDB crash around the bridge must starve a node");
    assert!(div.per_node);
    assert!(
        div.plan
            .crashes
            .iter()
            .any(|c| c.kind == CrashKind::PersistentEdb),
        "the minimized plan must pin the loss on a wiping crash: {}",
        div.plan
    );
    // The localization names the starved node and the fact it never
    // outputs: a wipe only loses state, so no node can emit anything
    // the fault-free run would not.
    let loc = div
        .localization
        .as_ref()
        .expect("a per-node divergence must localize");
    assert!(
        !loc.extra,
        "soft-state loss starves, it cannot invent facts: {loc:?}"
    );
    assert!(
        div.expected.contains(&loc.fact),
        "the starved fact exists in the global reference (the union hides the loss)"
    );
    assert!(loc.round >= 1);
    // The same program under the same adversary is *globally*
    // consistent: the union never notices the starved node.
    let global = explore(
        &net,
        &t,
        &p,
        &ExplorerOptions {
            per_node: false,
            ..opts
        },
    )
    .unwrap();
    assert!(global.consistent(), "{:?}", global.divergence);
}

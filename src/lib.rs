//! # rtx — relational transducer networks for declarative networking
//!
//! An executable reproduction of *Ameloot, Neven, Van den Bussche,
//! "Relational transducers for declarative networking"* (PODS 2011) —
//! the paper that formalized and proved Hellerstein's **CALM
//! conjecture**: a query has a coordination-free distributed execution
//! strategy if and only if it is monotone.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`relational`] — the database kernel (values, facts, instances);
//! * [`query`] — FO, UCQ¬, Datalog, stratified Datalog, *while*;
//! * [`transducer`] — the relational transducer machine model;
//! * [`net`] — transducer networks: topologies, schedulers, runs;
//! * [`calm`] — the paper's constructions, examples, and analyses;
//! * [`machine`] — Turing machines and word structures;
//! * [`dedalus`] — Dedalus and the Theorem 18 TM simulation;
//! * [`chaos`] — fault injection, adversarial schedule exploration, and
//!   the empirical eventual-consistency checker;
//! * [`obs`] — the observability layer: structured tracing, the
//!   metrics registry, and run timeline export.
//!
//! ## Quick start
//!
//! ```
//! use rtx::calm::examples::ex3_transitive_closure;
//! use rtx::net::{run, FifoRoundRobin, HorizontalPartition, Network, RunBudget};
//! use rtx::relational::{fact, Instance, Schema};
//!
//! // the paper's Example 3: distributed transitive closure
//! let transducer = ex3_transitive_closure(true).unwrap();
//! let input = Instance::from_facts(
//!     Schema::new().with("S", 2),
//!     vec![fact!("S", 1, 2), fact!("S", 2, 3)],
//! )
//! .unwrap();
//! let net = Network::ring(4).unwrap();
//! let partition = HorizontalPartition::round_robin(&net, &input);
//! let out = run(&net, &transducer, &partition, &mut FifoRoundRobin::new(),
//!               &RunBudget::steps(100_000)).unwrap();
//! assert!(out.quiescent);
//! assert_eq!(out.output.len(), 3); // {(1,2),(2,3),(1,3)}
//! ```

pub use rtx_calm as calm;
pub use rtx_chaos as chaos;
pub use rtx_dedalus as dedalus;
pub use rtx_machine as machine;
pub use rtx_net as net;
pub use rtx_obs as obs;
pub use rtx_query as query;
pub use rtx_relational as relational;
pub use rtx_transducer as transducer;

//! Quickstart: distribute a monotone query, watch it converge without
//! coordination; distribute a nonmonotone one, watch it coordinate.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use rtx::calm::constructions::distribute::distribute_monotone;
use rtx::calm::constructions::flood::FloodMode;
use rtx::calm::examples::ex10_emptiness;
use rtx::net::{run, FifoRoundRobin, HorizontalPartition, Network, RunBudget};
use rtx::query::{DatalogQuery, Query, QueryRef};
use rtx::relational::{fact, Instance, Schema};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- a monotone query: reachability -------------------------------
    let program = rtx::query::parser::parse_program(
        "reach(X)   :- src(X).
         reach(Y)   :- reach(X), edge(X,Y).",
    )?;
    let reach: QueryRef = Arc::new(DatalogQuery::new(program, "reach")?);

    let schema = Schema::new().with("edge", 2).with("src", 1);
    let input = Instance::from_facts(
        schema.clone(),
        vec![
            fact!("src", 1),
            fact!("edge", 1, 2),
            fact!("edge", 2, 3),
            fact!("edge", 3, 4),
            fact!("edge", 7, 8), // unreachable island
        ],
    )?;
    let expected = reach.eval(&input)?;

    // Theorem 6(2): wrap the monotone query into an oblivious,
    // coordination-free transducer that floods inputs and re-evaluates.
    let transducer = distribute_monotone(reach, &schema, FloodMode::Dedup)?;

    let net = Network::ring(5)?;
    let partition = HorizontalPartition::round_robin(&net, &input);
    let outcome = run(
        &net,
        &transducer,
        &partition,
        &mut FifoRoundRobin::new(),
        &RunBudget::steps(100_000),
    )?;

    println!("== monotone query: reachability on a 5-node ring ==");
    println!("quiescent:        {}", outcome.quiescent);
    println!("steps:            {}", outcome.steps);
    println!("messages:         {}", outcome.messages_enqueued);
    println!("output == Q(I):   {}", outcome.output == expected);
    println!("answers:          {}", outcome.output);

    // ---- a nonmonotone query: emptiness (Example 10) ------------------
    let emptiness = ex10_emptiness()?;
    let empty_input = Instance::empty(Schema::new().with("S", 1));
    let partition = HorizontalPartition::round_robin(&net, &empty_input);
    let outcome2 = run(
        &net,
        &emptiness,
        &partition,
        &mut FifoRoundRobin::new(),
        &RunBudget::steps(100_000),
    )?;
    println!("\n== nonmonotone query: emptiness of S on the same ring ==");
    println!("quiescent:        {}", outcome2.quiescent);
    println!("S = ∅ certified:  {}", outcome2.output.as_bool());
    println!(
        "messages:         {} (the coordination CALM says monotone queries avoid)",
        outcome2.messages_enqueued
    );
    Ok(())
}

//! Write Dedalus in its surface syntax and watch it run tick by tick:
//! asynchronous links, persisted state, and timestamp entanglement.
//!
//! ```bash
//! cargo run --example dedalus_by_hand
//! ```

use rtx::dedalus::{parse_dedalus, run_dedalus, DedalusOptions, TemporalFacts};
use rtx::relational::fact;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Reachability over links that deliver asynchronously — the
    // paper's motivating declarative-networking flavor: a fact sent on a
    // link arrives at a nondeterministically later timestamp.
    let program = parse_dedalus(
        "% state persistence (the 'pos-predicates' of the paper)
         link(X,Y)@next  :- link(X,Y).
         reach(X)@next   :- reach(X).

         % local deduction within a tick
         reach(X)        :- src(X).

         % asynchronous propagation across a link
         reach(Y)@async  :- reach(X), link(X,Y).

         % entanglement: record WHEN each node was first discovered
         found_at(X, now)@next :- reach(X), !seen(X).
         seen(X)@next          :- reach(X).
         seen(X)@next          :- seen(X).
         found_at(X,T)@next    :- found_at(X,T).",
    )?;

    let mut edb = TemporalFacts::new();
    edb.insert(0, fact!("src", "a"));
    edb.insert(0, fact!("link", "a", "b"));
    edb.insert(0, fact!("link", "b", "c"));
    edb.insert(4, fact!("link", "c", "d")); // a late link

    let opts = DedalusOptions {
        max_ticks: 60,
        async_max_delay: 3,
        seed: 7,
        async_faults: None,
    };
    let trace = run_dedalus(&program, &edb, &opts)?;

    println!("tick-by-tick discovery (async delays are seeded):");
    let mut last_reach = 0;
    for (t, db) in trace.ticks.iter().enumerate() {
        let reach = db.relation(&"reach".into())?;
        if reach.len() != last_reach {
            println!("  tick {t:>2}: reach = {reach}");
            last_reach = reach.len();
        }
    }
    let final_db = trace.last();
    println!("\nconverged at tick: {:?}", trace.converged_at);
    println!(
        "discovery times:   {}",
        final_db.relation(&"found_at".into())?
    );
    assert!(trace.converged(), "eventually consistent");
    assert_eq!(
        final_db.relation(&"reach".into())?.len(),
        4,
        "a,b,c,d all reached"
    );
    Ok(())
}

//! The CALM theorem, empirically: classify the paper's transducers and
//! print the Corollary 13 pattern — *coordination-free ⟺ oblivious ⟺
//! monotone*.
//!
//! ```bash
//! cargo run --example calm_classifier
//! ```

use rtx::calm::analysis::{classify, standard_suite, ClassifierOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ClassifierOptions::default();
    println!("CALM classification (bounded, seeded exploration)");
    println!("{}", "-".repeat(118));
    println!(
        "{:<22} {:<10} {:<13} {:<11} {:<5} {:<9} {:<11} {:<12} {:<10}",
        "case",
        "oblivious",
        "inflationary",
        "consistent",
        "nti",
        "computes",
        "coord-free",
        "monotone(Q)",
        "generic(Q)"
    );
    println!("{}", "-".repeat(118));
    for case in standard_suite() {
        let v = classify(&case, &opts)?;
        println!(
            "{:<22} {:<10} {:<13} {:<11} {:<5} {:<9} {:<11} {:<12} {:<10}",
            v.name,
            v.classification.oblivious,
            v.classification.inflationary,
            v.consistent,
            v.network_independent,
            v.computes_reference,
            v.coordination_free,
            v.reference_monotone,
            v.reference_generic,
        );
    }
    println!("{}", "-".repeat(118));
    println!(
        "CALM (Cor. 13): coordination-free ⟺ monotone; oblivious ⇒ coordination-free (Prop. 11)."
    );
    Ok(())
}

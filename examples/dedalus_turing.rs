//! Theorem 18: simulate Turing machines inside Dedalus, with input facts
//! arriving at arbitrary timestamps, and cross-validate against a direct
//! interpreter.
//!
//! ```bash
//! cargo run --example dedalus_turing
//! ```

use rtx::dedalus::{simulate_word, DedalusOptions, InputSchedule};
use rtx::machine::machines;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = DedalusOptions {
        max_ticks: 2000,
        async_max_delay: 1,
        seed: 0,
        async_faults: None,
    };
    println!("Turing machines as eventually-consistent Dedalus programs (Theorem 18)");
    println!("{}", "-".repeat(88));
    println!(
        "{:<14} {:<8} {:<11} {:<14} {:<14} {:<10}",
        "machine", "word", "interpreter", "dedalus(t=0)", "dedalus(scat)", "converged@"
    );
    println!("{}", "-".repeat(88));
    for (m, cases) in machines::catalog() {
        for (w, _) in cases {
            if w.len() < 2 {
                continue; // the paper considers strings of length ≥ 2
            }
            let direct = m.run(w, 1_000_000)?.accepted();
            let sim0 = simulate_word(&m, w, InputSchedule::AllAtZero, &opts)?;
            let sim_scattered = simulate_word(
                &m,
                w,
                InputSchedule::Scattered {
                    spread: 5,
                    seed: 42,
                },
                &opts,
            )?;
            assert_eq!(
                direct, sim0.accepted,
                "simulation must agree with the machine"
            );
            assert_eq!(direct, sim_scattered.accepted, "…under any arrival order");
            println!(
                "{:<14} {:<8} {:<11} {:<14} {:<14} {:<10}",
                m.name(),
                w,
                direct,
                sim0.accepted,
                sim_scattered.accepted,
                sim0.converged_at
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "-".into()),
            );
        }
    }
    println!("{}", "-".repeat(88));
    println!("all rows agree: Q_M is expressed in an eventually consistent way.");
    Ok(())
}

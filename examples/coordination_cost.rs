//! Quantifying coordination: message cost of the ack-based multicast
//! (Lemma 5(1)) versus oblivious flooding (Lemma 5(2)) as the network
//! grows — the overhead the CALM theorem lets monotone queries skip.
//!
//! ```bash
//! cargo run --release --example coordination_cost
//! ```

use rtx::calm::constructions::flood::{flood_transducer, FloodMode};
use rtx::calm::constructions::multicast::multicast_transducer;
use rtx::net::{run, FifoRoundRobin, HorizontalPartition, Network, RunBudget};
use rtx::relational::{fact, Instance, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::new().with("S", 1);
    let input = Instance::from_facts(
        schema.clone(),
        (0..6).map(|i| fact!("S", i)).collect::<Vec<_>>(),
    )?;

    println!("dissemination cost: flooding vs ack-multicast (6 input facts, line topology)");
    println!("{}", "-".repeat(78));
    println!(
        "{:<7} {:<16} {:<16} {:<16} {:<12}",
        "nodes", "flood msgs", "multicast msgs", "overhead", "both ready?"
    );
    println!("{}", "-".repeat(78));
    for n in [2usize, 3, 4, 5, 6] {
        let net = Network::line(n)?;
        let partition = HorizontalPartition::round_robin(&net, &input);
        let budget = RunBudget::steps(2_000_000);

        let flood = flood_transducer(&schema, FloodMode::Dedup, None)?;
        let f = run(
            &net,
            &flood,
            &partition,
            &mut FifoRoundRobin::new(),
            &budget,
        )?;

        let multicast = multicast_transducer(&schema, None)?;
        let m = run(
            &net,
            &multicast,
            &partition,
            &mut FifoRoundRobin::new(),
            &budget,
        )?;

        println!(
            "{:<7} {:<16} {:<16} {:<16.1} {:<12}",
            n,
            f.messages_enqueued,
            m.messages_enqueued,
            m.messages_enqueued as f64 / f.messages_enqueued.max(1) as f64,
            f.quiescent && m.quiescent,
        );
    }
    println!("{}", "-".repeat(78));
    println!("the multicast pays for certainty (its Ready flag) with quadratic ack traffic;");
    println!("flooding gives every node the data with no Id/All and no acknowledgements.");
    Ok(())
}

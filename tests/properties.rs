//! Property-based tests (proptest) for the core invariants of the
//! reproduction:
//!
//! * genericity of constant-free queries: `Q(h(I)) = h(Q(I))`;
//! * monotonicity of positive programs: `I ⊆ J ⇒ P(I) ⊆ P(J)`;
//! * naive ≡ semi-naive Datalog evaluation;
//! * flooding disseminates to every node of random connected topologies;
//! * distributed TC is consistent across random seeds/partitions;
//! * the transducer update formula's conflict-resolution laws;
//! * Dedalus TM simulation ≡ the direct interpreter on random words.

use proptest::prelude::*;
use rtx::calm::constructions::distribute::distribute_monotone;
use rtx::calm::constructions::flood::{flood_transducer, FloodMode};
use rtx::net::{run, HorizontalPartition, Network, RandomScheduler, RunBudget};
use rtx::query::{DatalogQuery, EvalStrategy, Query, QueryRef};
use rtx::relational::{fact, Fact, Instance, Iso, Schema, Value};
use std::sync::Arc;

fn edge_instance(pairs: &[(u8, u8)]) -> Instance {
    let sch = Schema::new().with("E", 2);
    let mut i = Instance::empty(sch);
    for &(a, b) in pairs {
        i.insert_fact(fact!("E", a as i64, b as i64)).unwrap();
    }
    i
}

fn tc_query() -> DatalogQuery {
    let p =
        rtx::query::parser::parse_program("T(X,Y) :- E(X,Y). T(X,Z) :- T(X,Y), E(Y,Z).").unwrap();
    DatalogQuery::new(p, "T").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn genericity_of_tc(pairs in proptest::collection::vec((0u8..8, 0u8..8), 0..10),
                        perm_seed in 0u64..1000) {
        use rand::SeedableRng;
        let i = edge_instance(&pairs);
        let q = tc_query();
        let mut rng = rand::rngs::StdRng::seed_from_u64(perm_seed);
        let iso = rtx::calm::analysis::random_adom_permutation(&i, &mut rng);
        let lhs = q.eval(&iso.apply_instance(&i)).unwrap();
        let rhs = iso.apply_relation(&q.eval(&i).unwrap());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn genericity_under_fresh_renaming(pairs in proptest::collection::vec((0u8..8, 0u8..8), 0..10)) {
        let i = edge_instance(&pairs);
        let q = tc_query();
        let iso = rtx::calm::analysis::fresh_renaming(&i, 99);
        let lhs = q.eval(&iso.apply_instance(&i)).unwrap();
        let rhs = iso.apply_relation(&q.eval(&i).unwrap());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn monotonicity_of_positive_datalog(pairs in proptest::collection::vec((0u8..6, 0u8..6), 0..12),
                                        keep in proptest::collection::vec(any::<bool>(), 12)) {
        let big = edge_instance(&pairs);
        let mut small = Instance::empty(big.schema().clone());
        for (i, f) in big.facts().enumerate() {
            if *keep.get(i).unwrap_or(&false) {
                small.insert_fact(f).unwrap();
            }
        }
        let q = tc_query();
        let small_out = q.eval(&small).unwrap();
        let big_out = q.eval(&big).unwrap();
        prop_assert!(small_out.is_subset(&big_out));
    }

    #[test]
    fn naive_equals_seminaive(pairs in proptest::collection::vec((0u8..7, 0u8..7), 0..14)) {
        let i = edge_instance(&pairs);
        let semi = tc_query().eval(&i).unwrap();
        let naive = tc_query().with_strategy(EvalStrategy::Naive).eval(&i).unwrap();
        prop_assert_eq!(semi, naive);
    }

    #[test]
    fn flooding_reaches_all_nodes(values in proptest::collection::btree_set(0i64..40, 1..6),
                                  nodes in 2usize..6,
                                  topo_seed in 0u64..500,
                                  sched_seed in 0u64..500) {
        use rand::SeedableRng;
        let sch = Schema::new().with("S", 1);
        let facts: Vec<Fact> = values.iter().map(|&v| fact!("S", v)).collect();
        let input = Instance::from_facts(sch.clone(), facts).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(topo_seed);
        let net = Network::random_connected(nodes, 0.25, &mut rng).unwrap();
        let t = flood_transducer(&sch, FloodMode::Dedup, None).unwrap();
        let p = HorizontalPartition::random(&net, &input, 0.1, &mut rng);
        let out = run(&net, &t, &p, &mut RandomScheduler::seeded(sched_seed),
                      &RunBudget::steps(500_000)).unwrap();
        prop_assert!(out.quiescent);
        for n in net.nodes() {
            let st = out.final_config.state(n).unwrap();
            let store = st.relation(&"Store_S".into()).unwrap();
            prop_assert_eq!(store.len(), values.len(), "node {} incomplete", n);
        }
    }

    #[test]
    fn distributed_tc_consistent_across_everything(
        pairs in proptest::collection::vec((0u8..5, 0u8..5), 1..8),
        seed_a in 0u64..300, seed_b in 300u64..600) {
        let input = edge_instance(&pairs);
        let q: QueryRef = Arc::new(tc_query());
        let expected = q.eval(&input).unwrap();
        let t = distribute_monotone(q, input.schema(), FloodMode::Dedup).unwrap();
        let net = Network::ring(3).unwrap();
        for (seed, partition) in [
            (seed_a, HorizontalPartition::round_robin(&net, &input)),
            (seed_b, HorizontalPartition::replicate(&net, &input)),
        ] {
            let out = run(&net, &t, &partition, &mut RandomScheduler::seeded(seed),
                          &RunBudget::steps(500_000)).unwrap();
            prop_assert!(out.quiescent);
            prop_assert_eq!(out.output.clone(), expected.clone());
        }
    }

    #[test]
    fn update_formula_laws(ins in proptest::collection::btree_set(0i64..10, 0..6),
                           del in proptest::collection::btree_set(0i64..10, 0..6),
                           cur in proptest::collection::btree_set(0i64..10, 0..6)) {
        // J(R) = (ins∖del) ∪ (ins∩del∩cur) ∪ (cur∖(ins∪del)) — element-wise:
        // x ∈ J ⟺ (x∈ins ∧ x∉del) ∨ (x∈ins ∧ x∈del ∧ x∈cur) ∨ (x∈cur ∧ x∉ins ∧ x∉del)
        use rtx::query::{NativeQuery, QueryRef};
        use rtx::relational::{Relation, Tuple};
        let mk = |s: &std::collections::BTreeSet<i64>| {
            Relation::from_tuples(1, s.iter().map(|&v| Tuple::new(vec![Value::int(v)])).collect::<Vec<_>>()).unwrap()
        };
        let ins_rel = mk(&ins);
        let del_rel = mk(&del);
        let ins_q: QueryRef = {
            let r = ins_rel.clone();
            Arc::new(NativeQuery::new("ins", 1, [rtx::relational::RelName::new("A")], move |_| Ok(r.clone())))
        };
        let del_q: QueryRef = {
            let r = del_rel.clone();
            Arc::new(NativeQuery::new("del", 1, [rtx::relational::RelName::new("A")], move |_| Ok(r.clone())))
        };
        let t = rtx::transducer::TransducerBuilder::new("law")
            .input_relation("A", 1)
            .memory_relation("T", 1)
            .insert("T", ins_q)
            .delete("T", del_q)
            .build().unwrap();
        let input = Instance::empty(Schema::new().with("A", 1));
        let nodes: std::collections::BTreeSet<Value> = [Value::sym("n")].into();
        let mut state = t.schema().initial_state(&input, &Value::sym("n"), &nodes).unwrap();
        state.set_relation("T", mk(&cur)).unwrap();
        let res = t.heartbeat(&state).unwrap();
        let j = res.new_state.relation(&"T".into()).unwrap();
        for x in 0i64..10 {
            let expected = (ins.contains(&x) && !del.contains(&x))
                || (ins.contains(&x) && del.contains(&x) && cur.contains(&x))
                || (cur.contains(&x) && !ins.contains(&x) && !del.contains(&x));
            let tuple = rtx::relational::Tuple::new(vec![Value::int(x)]);
            prop_assert_eq!(j.contains(&tuple), expected, "element {}", x);
        }
    }

    #[test]
    fn iso_roundtrip(pairs in proptest::collection::vec((0u8..10, 0u8..10), 0..12),
                     seed in 0u64..100) {
        use rand::SeedableRng;
        let i = edge_instance(&pairs);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let iso = rtx::calm::analysis::random_adom_permutation(&i, &mut rng);
        let back = iso.inverse().apply_instance(&iso.apply_instance(&i));
        prop_assert_eq!(back, i);
    }
}

proptest! {
    // the TM cross-validation is slower: fewer cases
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn dedalus_tm_matches_interpreter_on_random_words(
        word in proptest::collection::vec(prop_oneof![Just('a'), Just('b')], 2..6)) {
        use rtx::dedalus::{simulate_word, DedalusOptions, InputSchedule};
        let w: String = word.into_iter().collect();
        let opts = DedalusOptions { max_ticks: 2000, async_max_delay: 1, seed: 0, async_faults: None };
        for m in [rtx::machine::machines::even_as(), rtx::machine::machines::contains_ab()] {
            let direct = m.run(&w, 1_000_000).unwrap().accepted();
            let sim = simulate_word(&m, &w, InputSchedule::AllAtZero, &opts).unwrap();
            prop_assert!(sim.converged_at.is_some());
            prop_assert_eq!(direct, sim.accepted, "machine {} word {}", m.name(), w);
        }
    }

    #[test]
    fn theorem12_empirically_coordination_free_implies_monotone(
        pairs in proptest::collection::vec((0u8..4, 0u8..4), 1..5),
        extra in proptest::collection::vec((4u8..6, 4u8..6), 0..3)) {
        // the TC transducer is coordination-free; its computed query must
        // be monotone on random I ⊆ J
        let small_pairs = pairs.clone();
        let mut big_pairs = pairs;
        big_pairs.extend(extra);
        // rename E→S to match ex3's input schema
        let mk = |ps: &[(u8, u8)]| {
            let sch = Schema::new().with("S", 2);
            let mut i = Instance::empty(sch);
            for &(a, b) in ps {
                i.insert_fact(fact!("S", a as i64, b as i64)).unwrap();
            }
            i
        };
        let small = mk(&small_pairs);
        let big = mk(&big_pairs);
        let t = rtx::calm::examples::ex3_transitive_closure(true).unwrap();
        let net = Network::line(2).unwrap();
        let budget = RunBudget::steps(500_000);
        let out_small = run(&net, &t, &HorizontalPartition::round_robin(&net, &small),
                            &mut RandomScheduler::seeded(1), &budget).unwrap();
        let out_big = run(&net, &t, &HorizontalPartition::round_robin(&net, &big),
                          &mut RandomScheduler::seeded(2), &budget).unwrap();
        prop_assert!(out_small.quiescent && out_big.quiescent);
        prop_assert!(out_small.output.is_subset(&out_big.output));
    }
}

/// A random stratified Datalog program over EDB {E/2, S/1} and IDB
/// {T/2, U/1}: safe by construction (head/negated/nonequality variables
/// drawn from positive body variables, negation only on EDB).
fn random_program(seed: u64, n_rules: usize) -> rtx::query::Program {
    use rand::{Rng, SeedableRng};
    use rtx::query::{Atom, Literal, Program, Rule, Term, Var};
    const VARS: [&str; 4] = ["X", "Y", "Z", "W"];
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut rules = Vec::new();
    for _ in 0..n_rules.max(1) {
        let n_body = rng.gen_range(1usize..=3);
        let mut body = Vec::new();
        let mut body_vars: Vec<Var> = Vec::new();
        for _ in 0..n_body {
            let (pred, arity) = match rng.gen_range(0usize..4) {
                0 => ("E", 2),
                1 => ("S", 1),
                2 => ("T", 2),
                _ => ("U", 1),
            };
            let terms: Vec<Term> = (0..arity)
                .map(|_| {
                    let v = VARS[rng.gen_range(0usize..VARS.len())];
                    body_vars.push(Var::new(v));
                    Term::var(v)
                })
                .collect();
            body.push(Literal::Pos(Atom::new(pred, terms)));
        }
        let pick = |rng: &mut rand::rngs::StdRng, vars: &[Var]| -> Var {
            vars[rng.gen_range(0usize..vars.len())]
        };
        if rng.gen_range(0usize..3) == 0 {
            let v = pick(&mut rng, &body_vars);
            body.push(Literal::Neg(Atom::new("S", vec![Term::Var(v)])));
        }
        if rng.gen_range(0usize..3) == 0 {
            let a = pick(&mut rng, &body_vars);
            let b = pick(&mut rng, &body_vars);
            body.push(Literal::Diseq(Term::Var(a), Term::Var(b)));
        }
        let (head_pred, head_arity) = if rng.gen_range(0usize..2) == 0 {
            ("T", 2)
        } else {
            ("U", 1)
        };
        let head_terms: Vec<Term> = (0..head_arity)
            .map(|_| Term::Var(pick(&mut rng, &body_vars)))
            .collect();
        rules
            .push(Rule::new(Atom::new(head_pred, head_terms), body).expect("safe by construction"));
    }
    Program::new(rules).expect("consistent arities by construction")
}

fn random_db(pairs: &[(u8, u8)], singles: &[i64]) -> Instance {
    let sch = Schema::new().with("E", 2).with("S", 1);
    let mut db = Instance::empty(sch);
    for &(a, b) in pairs {
        db.insert_fact(fact!("E", a as i64, b as i64)).unwrap();
    }
    for &v in singles {
        db.insert_fact(fact!("S", v)).unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole equivalence: planned, index-probing joins compute
    /// exactly what the seed's full-scan joins computed, on random
    /// stratified programs and random instances, under both fixpoint
    /// strategies.
    #[test]
    fn indexed_join_equals_scan_join(
        prog_seed in 0u64..10_000,
        n_rules in 1usize..6,
        pairs in proptest::collection::vec((0u8..6, 0u8..6), 0..14),
        singles in proptest::collection::btree_set(0i64..6, 0..5)) {
        use rtx::query::{EvalStrategy, JoinMode};
        let p = random_program(prog_seed, n_rules);
        let db = random_db(&pairs, &singles.iter().copied().collect::<Vec<_>>());
        let indexed = p.eval_with_mode(&db, EvalStrategy::SemiNaive, JoinMode::Indexed).unwrap();
        let scan = p.eval_with_mode(&db, EvalStrategy::SemiNaive, JoinMode::Scan).unwrap();
        prop_assert_eq!(&indexed, &scan);
        // and across strategies, with indexes on
        let naive = p.eval_with_mode(&db, EvalStrategy::Naive, JoinMode::Indexed).unwrap();
        prop_assert_eq!(&indexed, &naive);
    }

    /// FO generator joins: indexed and scan modes agree on a two-hop
    /// conjunctive query over random edges.
    #[test]
    fn fo_indexed_equals_scan(pairs in proptest::collection::vec((0u8..8, 0u8..8), 0..16)) {
        use rtx::query::{atom, FoQuery, Formula, JoinMode};
        let db = random_db(&pairs, &[]);
        let q = FoQuery::new(
            ["X", "Z"],
            Formula::exists(["Y"], Formula::and([
                Formula::atom(atom!("E"; @"X", @"Y")),
                Formula::atom(atom!("E"; @"Y", @"Z")),
            ])),
        ).unwrap();
        let indexed = q.clone().with_join_mode(JoinMode::Indexed).eval(&db).unwrap();
        let scan = q.with_join_mode(JoinMode::Scan).eval(&db).unwrap();
        prop_assert_eq!(indexed, scan);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The delta-store Dedalus runtime replays the clone-store runtime
    /// tick for tick on random temporal instances and delivery seeds.
    #[test]
    fn dedalus_delta_store_equals_clone_store(
        pairs in proptest::collection::vec((0u8..5, 0u8..5), 1..8),
        spread in 0u64..4,
        run_seed in 0u64..500) {
        use rtx::dedalus::{DRule, DTime, DedalusOptions, DedalusProgram, DedalusRuntime,
                           StoreMode, TemporalFacts};
        use rtx::query::atom;
        let p = DedalusProgram::new(vec![
            DRule::persist("e", 2),
            DRule::persist("got", 1),
            DRule::new(atom!("t"; @"X", @"Y"), DTime::Same).when(atom!("e"; @"X", @"Y")),
            DRule::new(atom!("t"; @"X", @"Z"), DTime::Same)
                .when(atom!("t"; @"X", @"Y"))
                .when(atom!("e"; @"Y", @"Z")),
            DRule::new(atom!("m"; @"X"), DTime::Async).when(atom!("e"; @"X", @"X")),
            DRule::new(atom!("got"; @"X"), DTime::Same).when(atom!("m"; @"X")),
        ]).unwrap();
        let mut edb = TemporalFacts::new();
        for (i, &(a, b)) in pairs.iter().enumerate() {
            edb.insert((i as u64) % (spread + 1), fact!("e", a as i64, b as i64));
        }
        let opts = DedalusOptions { max_ticks: 60, async_max_delay: 3, seed: run_seed, async_faults: None };
        let rt = DedalusRuntime::new(&p).unwrap();
        let delta = rt.run_with(&edb, &opts, StoreMode::Delta).unwrap();
        let clone = rt.run_with(&edb, &opts, StoreMode::Cloning).unwrap();
        prop_assert_eq!(delta.converged_at, clone.converged_at);
        prop_assert_eq!(delta.ticks, clone.ticks);
    }
}

#[test]
fn iso_with_explicit_pairs_sanity() {
    // non-proptest companion: a concrete renaming round trip
    let i = edge_instance(&[(1, 2), (2, 3)]);
    let iso = Iso::from_pairs(vec![
        (Value::int(1), Value::int(2)),
        (Value::int(2), Value::int(3)),
        (Value::int(3), Value::int(1)),
    ])
    .unwrap();
    let j = iso.apply_instance(&i);
    assert!(j.contains_fact(&fact!("E", 2, 3)));
    assert!(j.contains_fact(&fact!("E", 3, 1)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cross-engine validation: a conjunctive query evaluated by the
    /// join-based UCQ engine and by the FO engine (as ∃-formula) agree.
    #[test]
    fn fo_and_ucq_engines_agree_on_conjunctive_queries(
        pairs in proptest::collection::vec((0u8..6, 0u8..6), 0..10),
        singles in proptest::collection::btree_set(0i64..6, 0..5)) {
        use rtx::query::{atom, CqBuilder, Formula, FoQuery, Term, UcqQuery};
        let sch = Schema::new().with("E", 2).with("S", 1);
        let mut db = Instance::empty(sch);
        for &(a, b) in &pairs {
            db.insert_fact(fact!("E", a as i64, b as i64)).unwrap();
        }
        for &v in &singles {
            db.insert_fact(fact!("S", v)).unwrap();
        }
        // Q(X,Z) ← E(X,Y), E(Y,Z), S(X)
        let cq = UcqQuery::single(
            CqBuilder::head(vec![Term::var("X"), Term::var("Z")])
                .when(atom!("E"; @"X", @"Y"))
                .when(atom!("E"; @"Y", @"Z"))
                .when(atom!("S"; @"X"))
                .build()
                .unwrap(),
        );
        let fo = FoQuery::new(
            ["X", "Z"],
            Formula::exists(
                ["Y"],
                Formula::and([
                    Formula::atom(atom!("E"; @"X", @"Y")),
                    Formula::atom(atom!("E"; @"Y", @"Z")),
                    Formula::atom(atom!("S"; @"X")),
                ]),
            ),
        )
        .unwrap();
        prop_assert_eq!(cq.eval(&db).unwrap(), fo.eval(&db).unwrap());
    }

    /// The same cross-check with safe negation.
    #[test]
    fn fo_and_ucq_engines_agree_with_negation(
        pairs in proptest::collection::vec((0u8..5, 0u8..5), 0..10),
        singles in proptest::collection::btree_set(0i64..5, 0..4)) {
        use rtx::query::{atom, CqBuilder, Formula, FoQuery, Term, UcqQuery};
        let sch = Schema::new().with("E", 2).with("S", 1);
        let mut db = Instance::empty(sch);
        for &(a, b) in &pairs {
            db.insert_fact(fact!("E", a as i64, b as i64)).unwrap();
        }
        for &v in &singles {
            db.insert_fact(fact!("S", v)).unwrap();
        }
        // Q(X,Y) ← E(X,Y), ¬S(X), X ≠ Y
        let cq = UcqQuery::single(
            CqBuilder::head(vec![Term::var("X"), Term::var("Y")])
                .when(atom!("E"; @"X", @"Y"))
                .unless(atom!("S"; @"X"))
                .distinct(Term::var("X"), Term::var("Y"))
                .build()
                .unwrap(),
        );
        let fo = FoQuery::new(
            ["X", "Y"],
            Formula::and([
                Formula::atom(atom!("E"; @"X", @"Y")),
                Formula::not(Formula::atom(atom!("S"; @"X"))),
                Formula::neq(Term::var("X"), Term::var("Y")),
            ]),
        )
        .unwrap();
        prop_assert_eq!(cq.eval(&db).unwrap(), fo.eval(&db).unwrap());
    }
}

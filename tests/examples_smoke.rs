//! Smoke test: every `examples/` program must build and exit 0.
//!
//! Runs each example through `cargo run --example` (the same entry
//! point CI and the README advertise) so examples can never silently
//! rot. The examples are small end-to-end demos; each finishes in
//! seconds even in debug mode.

use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "calm_classifier",
    "coordination_cost",
    "dedalus_by_hand",
    "dedalus_turing",
];

#[test]
fn all_examples_run_cleanly() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    for name in EXAMPLES {
        let out = Command::new(&cargo)
            .args(["run", "--quiet", "--example", name])
            .env("CARGO_TERM_COLOR", "never")
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example `{name}`: {e}"));
        assert!(
            out.status.success(),
            "example `{name}` failed with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            out.status,
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
    }
}

//! Integration tests for the analysis toolkit's reporting surfaces —
//! the parts downstream users consume programmatically.

use rtx::calm::analysis::{
    check_consistency, check_generic, check_monotone, verify_computes, ConsistencyOptions,
    GenericityVerdict, MonotonicityVerdict, ScheduleSpec,
};
use rtx::calm::examples;
use rtx::net::Network;
use rtx::query::atom;
use rtx::query::{FoQuery, Formula, Query};
use rtx::relational::{fact, Instance, Relation, Schema};

fn tc_input() -> Instance {
    Instance::from_facts(
        Schema::new().with("S", 2),
        vec![fact!("S", 1, 2), fact!("S", 2, 3)],
    )
    .unwrap()
}

#[test]
fn consistency_report_fields_are_coherent() {
    let t = examples::ex3_transitive_closure(true).unwrap();
    let opts = ConsistencyOptions {
        topologies: vec![
            ("single".into(), Network::single()),
            ("line2".into(), Network::line(2).unwrap()),
        ],
        schedules: vec![ScheduleSpec::Fifo, ScheduleSpec::Random(3)],
        random_partitions: 1,
        seed: 5,
        max_steps: 100_000,
        target_output: None,
    };
    let report = check_consistency(&t, &tc_input(), &opts).unwrap();
    assert!(report.consistent);
    assert!(report.network_independent);
    assert!(report.all_settled);
    assert!(report.witness.is_none());
    assert_eq!(report.outputs.len(), 2, "one representative per topology");
    // topologies × partitions × schedules
    assert_eq!(report.runs, 2 * 4 * 2);
    for (_, o) in &report.outputs {
        assert_eq!(o.len(), 3);
    }
}

#[test]
fn schedule_spec_display() {
    assert_eq!(ScheduleSpec::Fifo.to_string(), "fifo");
    assert_eq!(ScheduleSpec::Lifo.to_string(), "lifo");
    assert_eq!(ScheduleSpec::Random(9).to_string(), "random#9");
}

#[test]
fn verify_computes_rejects_superset_and_subset_answers() {
    let t = examples::ex3_transitive_closure(true).unwrap();
    let input = tc_input();
    let opts = ConsistencyOptions {
        topologies: vec![("line2".into(), Network::line(2).unwrap())],
        schedules: vec![ScheduleSpec::Fifo],
        random_partitions: 0,
        seed: 1,
        max_steps: 100_000,
        target_output: None,
    };
    let mut correct = Relation::empty(2);
    for (a, b) in [(1i64, 2i64), (2, 3), (1, 3)] {
        correct
            .insert(rtx::relational::Tuple::new(vec![
                rtx::relational::Value::int(a),
                rtx::relational::Value::int(b),
            ]))
            .unwrap();
    }
    assert!(verify_computes(&t, &input, &correct, &opts).unwrap());
    // a strict subset must be rejected
    let mut subset = correct.clone();
    subset.remove(&rtx::relational::Tuple::new(vec![
        rtx::relational::Value::int(1),
        rtx::relational::Value::int(3),
    ]));
    assert!(!verify_computes(&t, &input, &subset, &opts).unwrap());
    // a strict superset must be rejected too
    let mut superset = correct;
    superset
        .insert(rtx::relational::Tuple::new(vec![
            rtx::relational::Value::int(3),
            rtx::relational::Value::int(1),
        ]))
        .unwrap();
    assert!(!verify_computes(&t, &input, &superset, &opts).unwrap());
}

#[test]
fn monotonicity_verdict_carries_witness() {
    let q = FoQuery::sentence(Formula::not(Formula::exists(
        ["X"],
        Formula::atom(atom!("S"; @"X")),
    )))
    .unwrap();
    let pool = vec![Instance::from_facts(Schema::new().with("S", 1), vec![fact!("S", 1)]).unwrap()];
    match check_monotone(&q, &pool, 4, 7).unwrap() {
        MonotonicityVerdict::Violation { smaller, larger } => {
            assert!(smaller.is_subinstance_of(&larger));
            assert!(q.eval(&smaller).unwrap().as_bool());
            assert!(!q.eval(&larger).unwrap().as_bool());
        }
        other => panic!("expected a violation, got {other:?}"),
    }
}

#[test]
fn genericity_verdict_on_suite_references() {
    for case in rtx::calm::analysis::standard_suite() {
        let v = check_generic(&case.reference, &case.inputs, 3, 11).unwrap();
        assert!(
            matches!(v, GenericityVerdict::NoViolationFound { .. }),
            "{} reference must be generic",
            case.name
        );
    }
}

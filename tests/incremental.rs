//! Property tests for the cross-tick incremental fixpoint engine:
//!
//! * `MaintainedFixpoint` ≡ from-scratch `Program::eval` on random
//!   stratified programs (negation across strata included) under random
//!   ± delta schedules, including retraction-heavy ones and IDB seed
//!   changes;
//! * the Dedalus delta store with `FixpointMode::Incremental` replays
//!   `FixpointMode::Scratch` (and the seed cloning store) tick for tick
//!   on programs whose carries drop facts every tick.

use proptest::prelude::*;
use rtx::dedalus::{
    DRule, DTime, DedalusOptions, DedalusProgram, DedalusRuntime, FixpointMode, StoreMode,
    TemporalFacts,
};
use rtx::query::incremental::MaintainedFixpoint;
use rtx::query::{atom, Atom, Literal, Program, Rule, Term, Var};
use rtx::relational::{fact, Fact, Instance, InstanceDelta, Schema};

/// A random stratified program over EDB {E/2, S/1} with a recursive
/// middle layer {T/2, U/1} (negation on EDB only) and a top layer
/// {V/1} that may negate the middle layer — so random runs exercise
/// recursion, intra-stratum interplay, *and* negation across strata.
fn random_layered_program(seed: u64, n_rules: usize) -> Program {
    use rand::{Rng, SeedableRng};
    const VARS: [&str; 4] = ["X", "Y", "Z", "W"];
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut rules = Vec::new();
    for ri in 0..n_rules.max(2) {
        // Alternate layers so both are always populated.
        let top_layer = ri % 2 == 1;
        let n_body = rng.gen_range(1usize..=3);
        let mut body = Vec::new();
        let mut body_vars: Vec<Var> = Vec::new();
        for _ in 0..n_body {
            let choice = if top_layer {
                rng.gen_range(0usize..5)
            } else {
                rng.gen_range(0usize..4)
            };
            let (pred, arity) = match choice {
                0 => ("E", 2),
                1 => ("S", 1),
                2 => ("T", 2),
                3 => ("U", 1),
                _ => ("V", 1),
            };
            let terms: Vec<Term> = (0..arity)
                .map(|_| {
                    let v = VARS[rng.gen_range(0usize..VARS.len())];
                    body_vars.push(Var::new(v));
                    Term::var(v)
                })
                .collect();
            body.push(Literal::Pos(Atom::new(pred, terms)));
        }
        let pick = |rng: &mut rand::rngs::StdRng, vars: &[Var]| -> Var {
            vars[rng.gen_range(0usize..vars.len())]
        };
        if rng.gen_range(0usize..3) == 0 {
            // Bottom layer negates EDB; top layer may negate the middle
            // layer (strictly lower — stratifiable by construction).
            let v = pick(&mut rng, &body_vars);
            let neg = if top_layer && rng.gen_range(0usize..2) == 0 {
                Atom::new("U", vec![Term::Var(v)])
            } else {
                Atom::new("S", vec![Term::Var(v)])
            };
            body.push(Literal::Neg(neg));
        }
        if rng.gen_range(0usize..3) == 0 {
            let a = pick(&mut rng, &body_vars);
            let b = pick(&mut rng, &body_vars);
            body.push(Literal::Diseq(Term::Var(a), Term::Var(b)));
        }
        let (head_pred, head_arity) = if top_layer {
            ("V", 1)
        } else if rng.gen_range(0usize..2) == 0 {
            ("T", 2)
        } else {
            ("U", 1)
        };
        let head_terms: Vec<Term> = (0..head_arity)
            .map(|_| Term::Var(pick(&mut rng, &body_vars)))
            .collect();
        rules
            .push(Rule::new(Atom::new(head_pred, head_terms), body).expect("safe by construction"));
    }
    Program::new(rules).expect("consistent arities by construction")
}

fn full_schema() -> Schema {
    Schema::new()
        .with("E", 2)
        .with("S", 1)
        .with("T", 2)
        .with("U", 1)
        .with("V", 1)
}

/// Turn a ± schedule step into facts over the small shared domain.
fn step_facts(pairs: &[(u8, u8)], singles: &[u8], seeds: &[(u8, u8)]) -> Vec<Fact> {
    let mut out = Vec::new();
    for &(a, b) in pairs {
        out.push(fact!("E", a as i64, b as i64));
    }
    for &v in singles {
        out.push(fact!("S", v as i64));
    }
    for &(a, b) in seeds {
        out.push(fact!("T", a as i64, b as i64));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole equivalence: a maintained fixpoint advanced by a
    /// random ± schedule always equals a from-scratch evaluation of
    /// the same base — outputs and bookkeeping alike. Removal steps
    /// draw from the same small domain as insertions, so schedules are
    /// genuinely retraction-heavy, and IDB seed facts come and go too.
    #[test]
    fn maintained_fixpoint_equals_scratch(
        prog_seed in 0u64..10_000,
        n_rules in 2usize..7,
        schedule in proptest::collection::vec(
            (proptest::collection::vec((0u8..5, 0u8..5), 0..5),
             proptest::collection::vec(0u8..5, 0..3),
             proptest::collection::vec((0u8..5, 0u8..5), 0..4),
             proptest::collection::vec(0u8..5, 0..2),
             proptest::collection::vec((0u8..5, 0u8..5), 0..2)),
            1..6)) {
        let p = random_layered_program(prog_seed, n_rules);
        let mut base = Instance::empty(full_schema());
        let mut fix = MaintainedFixpoint::new(&p).unwrap();
        fix.initialize(&base).unwrap();
        for (add_pairs, add_singles, rem_pairs, rem_singles, seeds) in &schedule {
            // `seeds` adds exogenous T facts (IDB seed support); the
            // final teardown below retracts them again.
            let added = step_facts(add_pairs, add_singles, seeds);
            let removed = step_facts(rem_pairs, rem_singles, &[]);
            let delta = InstanceDelta::from_parts(added, removed);
            base.apply_delta(&delta).unwrap();
            let maintained = fix.apply(&delta).unwrap();
            let scratch = p.eval(&base).unwrap();
            prop_assert_eq!(maintained, &scratch);
        }
        // Tear everything down: the maintained store must come back to
        // the fixpoint of the (possibly empty) remainder.
        let all: Vec<Fact> = base.facts().collect();
        let delta = InstanceDelta::from_parts(Vec::new(), all);
        base.apply_delta(&delta).unwrap();
        let maintained = fix.apply(&delta).unwrap();
        prop_assert_eq!(maintained, &p.eval(&base).unwrap());
    }
}

/// A Dedalus program exercising every timing class whose carry drops
/// facts every tick: a one-hot token walks the `n` graph (`at` is
/// *not* persisted — each tick retracts the old position), reachability
/// is recomputed deductively from the moving token, and a negation
/// stratum reports the unreached nodes.
fn token_program() -> DedalusProgram {
    DedalusProgram::new(vec![
        DRule::persist("n", 2),
        DRule::persist("e", 2),
        DRule::persist("s", 1),
        DRule::persist("got", 1),
        // inductive, non-persisting: the carry retracts the old `at`
        DRule::new(atom!("at"; @"Y"), DTime::Next)
            .when(atom!("at"; @"X"))
            .when(atom!("n"; @"X", @"Y")),
        // deductive stratum 0: reach from the token over e-edges
        DRule::new(atom!("reach"; @"X"), DTime::Same).when(atom!("at"; @"X")),
        DRule::new(atom!("reach"; @"Y"), DTime::Same)
            .when(atom!("reach"; @"X"))
            .when(atom!("e"; @"X", @"Y")),
        // deductive stratum 1: negation across strata
        DRule::new(atom!("unreached"; @"X"), DTime::Same)
            .when(atom!("s"; @"X"))
            .unless(atom!("reach"; @"X")),
        // async + record
        DRule::new(atom!("m"; @"X"), DTime::Async).when(atom!("at"; @"X")),
        DRule::new(atom!("got"; @"X"), DTime::Same).when(atom!("m"; @"X")),
    ])
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Incremental ≡ scratch through the whole Dedalus loop — traces,
    /// convergence tick, and the cloning-store oracle — on random
    /// token graphs, edge sets, arrival schedules and delivery seeds.
    /// The token carry retracts facts every tick, so this is the
    /// retraction-heavy schedule of the DRed path.
    #[test]
    fn dedalus_incremental_fixpoint_equals_scratch(
        token_edges in proptest::collection::vec((0u8..4, 0u8..4), 1..6),
        e_edges in proptest::collection::vec((0u8..4, 0u8..4), 0..6),
        nodes in proptest::collection::btree_set(0u8..4, 1..4),
        spread in 0u64..3,
        run_seed in 0u64..500) {
        let p = token_program();
        let mut edb = TemporalFacts::new();
        for (i, &(a, b)) in token_edges.iter().enumerate() {
            edb.insert((i as u64) % (spread + 1), fact!("n", a as i64, b as i64));
        }
        for (i, &(a, b)) in e_edges.iter().enumerate() {
            edb.insert((i as u64) % (spread + 1), fact!("e", a as i64, b as i64));
        }
        for &v in &nodes {
            edb.insert(0, fact!("s", v as i64));
        }
        edb.insert(0, fact!("at", 0));
        let opts = DedalusOptions { max_ticks: 40, async_max_delay: 2, seed: run_seed, async_faults: None };
        let rt = DedalusRuntime::new(&p).unwrap();
        let inc = rt
            .run_with_fixpoint(&edb, &opts, StoreMode::Delta, FixpointMode::Incremental)
            .unwrap();
        let scr = rt
            .run_with_fixpoint(&edb, &opts, StoreMode::Delta, FixpointMode::Scratch)
            .unwrap();
        prop_assert_eq!(inc.converged_at, scr.converged_at);
        prop_assert_eq!(&inc.ticks, &scr.ticks);
        let cloning = rt.run_with(&edb, &opts, StoreMode::Cloning).unwrap();
        prop_assert_eq!(inc.converged_at, cloning.converged_at);
        prop_assert_eq!(&inc.ticks, &cloning.ticks);
    }
}

/// The DRed unit case at workspace level: over-deletion must re-derive
/// alternately supported facts, and cyclic support must not keep facts
/// alive (see `rtx_query::incremental` for the engine-level tests).
#[test]
fn over_deletion_rederivation_is_handled() {
    let p =
        rtx::query::parser::parse_program("T(X,Y) :- E(X,Y). T(X,Z) :- T(X,Y), E(Y,Z).").unwrap();
    let sch = Schema::new().with("E", 2).with("T", 2);
    let mut base = Instance::empty(sch);
    for (a, b) in [(1i64, 2i64), (2, 3), (3, 1), (1, 3)] {
        base.insert_fact(fact!("E", a, b)).unwrap();
    }
    let mut fix = MaintainedFixpoint::new(&p).unwrap();
    fix.initialize(&base).unwrap();
    // Break the cycle: everything reachable-only-through-(3,1) must go,
    // while T(1,3) (doubly derivable) survives via the direct edge.
    let delta = InstanceDelta::from_parts(Vec::new(), vec![fact!("E", 3, 1)]);
    base.apply_delta(&delta).unwrap();
    fix.apply(&delta).unwrap();
    assert_eq!(fix.current(), &p.eval(&base).unwrap());
    assert!(fix.current().contains_fact(&fact!("T", 1, 3)));
    assert!(!fix.current().contains_fact(&fact!("T", 3, 3)));
    assert!(fix.stats().facts_rederived > 0, "{:?}", fix.stats());
    assert!(fix.stats().facts_retracted > 0);
}

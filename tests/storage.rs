//! Property tests for the storage engines: the adaptive and columnar
//! sorted-run engines against the B-tree oracle (`RTX_STORAGE=btree`),
//! under the schedules that exercise every adoption path — random
//! interleaved inserts and deletes, `diff`/`apply_delta` round trips,
//! set algebra, random stratified programs under naive and semi-naive
//! evaluation, and the incremental fixpoint — plus directed tests
//! pinning the adaptive engine's promotion boundary and hysteresis.
//! Plus determinism of the process-wide value interner, which all
//! engines share.
//!
//! Every test here builds **all** representations explicitly with
//! `empty_in`/`from_facts_in`, so the suite is oracle-complete no
//! matter what `RTX_STORAGE` the ambient process runs under.

use proptest::prelude::*;
use rtx::query::{EvalStrategy, MaintainedFixpoint};
use rtx::relational::{
    adaptive_promote_len, adaptive_reentry_len, fact, Fact, Instance, Relation, Schema,
    StorageMode, Tuple, Value, Vid,
};

/// The three-way equivalence set: every engine in one array, oracle
/// last.
const ALL_MODES: [StorageMode; 3] = [
    StorageMode::Adaptive,
    StorageMode::Columnar,
    StorageMode::Btree,
];

fn tuple2(a: u8, b: u8) -> Tuple {
    vec![Value::Int(a as i64), Value::Int(b as i64)].into()
}

/// One mutation in a randomized schedule: `(insert?, a, b)` — insert
/// `(a, b)` when the flag is set, otherwise remove it. (The compat
/// proptest has no mapping combinators, so schedules stay raw tuples.)
fn op_strategy() -> (
    proptest::strategy::Any<bool>,
    std::ops::Range<u8>,
    std::ops::Range<u8>,
) {
    (any::<bool>(), 0u8..12, 0u8..12)
}

fn edge_instance_in(mode: StorageMode, pairs: &[(u8, u8)]) -> Instance {
    let mut i = Instance::empty_in(mode, Schema::new().with("e", 2));
    for &(a, b) in pairs {
        i.insert_fact(fact!("e", a as i64, b as i64)).unwrap();
    }
    i
}

/// The pool of always-safe stratified rules a random program draws
/// from: stratum 1 is positive (and optionally recursive) over the EDB
/// `E`, stratum 2 negates stratum-1 predicates. Index 0 is mandatory so
/// `P` is never undefined under negation.
const RULE_POOL: [&str; 8] = [
    "p(X,Y) :- e(X,Y).",
    "p(X,Z) :- p(X,Y), e(Y,Z).",
    "q(X) :- e(X,Y).",
    "q(Y) :- e(X,Y).",
    "r(X,Y) :- e(X,Y), !p(Y,X).",
    "s(X) :- q(X), !p(X,X).",
    "s(Y) :- e(X,Y), X != Y.",
    "w(X,Y) :- e(X,Y), q(Y), !s(X).",
];

fn random_program(picks: &[bool]) -> String {
    let mut src = String::from(RULE_POOL[0]);
    for (i, rule) in RULE_POOL.iter().enumerate().skip(1) {
        if *picks.get(i - 1).unwrap_or(&false) {
            src.push(' ');
            src.push_str(rule);
        }
    }
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Adaptive, columnar, and B-tree relations agree tuple-for-tuple
    /// under any interleaving of inserts and deletes — the schedule
    /// that forces tail accumulation, run adoption, and tombstone
    /// handling in the run-backed engines, and tombstone revival in
    /// the adaptive small log.
    #[test]
    fn columnar_matches_btree_under_mutation_schedules(
        ops in proptest::collection::vec(op_strategy(), 0..60),
    ) {
        let mut ad = Relation::empty_in(StorageMode::Adaptive, 2);
        let mut col = Relation::empty_in(StorageMode::Columnar, 2);
        let mut bt = Relation::empty_in(StorageMode::Btree, 2);
        for op in &ops {
            let (ins, a, b) = *op;
            if ins {
                let (x, y, z) = (col.insert(tuple2(a, b)).unwrap(),
                                 bt.insert(tuple2(a, b)).unwrap(),
                                 ad.insert(tuple2(a, b)).unwrap());
                prop_assert_eq!(x, y, "insert novelty must agree");
                prop_assert_eq!(z, y, "insert novelty must agree (adaptive)");
            } else {
                let keep = bt.remove(&tuple2(a, b));
                prop_assert_eq!(col.remove(&tuple2(a, b)), keep);
                prop_assert_eq!(ad.remove(&tuple2(a, b)), keep);
            }
            prop_assert_eq!(col.len(), bt.len());
            prop_assert_eq!(ad.len(), bt.len());
        }
        // Cross-mode equality is content equality.
        prop_assert_eq!(&col, &bt);
        prop_assert_eq!(&ad, &bt);
        prop_assert_eq!(&ad, &col);
        prop_assert!(col.iter().eq(bt.iter()), "iteration order is the sorted order");
        prop_assert!(ad.iter().eq(bt.iter()), "iteration order is the sorted order (adaptive)");
        for a in 0..12u8 {
            for b in 0..12u8 {
                prop_assert_eq!(col.contains(&tuple2(a, b)), bt.contains(&tuple2(a, b)));
                prop_assert_eq!(ad.contains(&tuple2(a, b)), bt.contains(&tuple2(a, b)));
            }
        }
    }

    /// `diff` and `apply_delta` round-trip across engines: a delta
    /// computed between B-tree relations moves a columnar relation to
    /// the same contents, and vice versa.
    #[test]
    fn deltas_transport_across_engines(
        from in proptest::collection::vec((0u8..10, 0u8..10), 0..25),
        to in proptest::collection::vec((0u8..10, 0u8..10), 0..25),
    ) {
        let mk = |mode, pairs: &[(u8, u8)]| {
            Relation::from_tuples_in(
                mode, 2, pairs.iter().map(|&(a, b)| tuple2(a, b)).collect::<Vec<_>>(),
            ).unwrap()
        };
        let bt_from = mk(StorageMode::Btree, &from);
        let bt_to = mk(StorageMode::Btree, &to);
        let delta_bt = bt_to.diff(&bt_from).unwrap();
        for mode in ALL_MODES {
            let m_from = mk(mode, &from);
            let m_to = mk(mode, &to);
            let delta_m = m_to.diff(&m_from).unwrap();
            prop_assert_eq!(delta_bt.added(), delta_m.added());
            prop_assert_eq!(delta_bt.removed(), delta_m.removed());

            // A delta computed on the oracle transports this engine,
            // and this engine's delta transports the oracle.
            let mut r = m_from.clone();
            r.apply_delta(&delta_bt).unwrap();
            prop_assert_eq!(&r, &bt_to);
            let mut bt = bt_from.clone();
            bt.apply_delta(&delta_m).unwrap();
            prop_assert_eq!(&bt, &m_to);
        }
    }

    /// The set algebra (union / intersect / difference / subset) gives
    /// identical answers whichever engine holds either operand.
    #[test]
    fn set_algebra_agrees_across_engines(
        xs in proptest::collection::vec((0u8..8, 0u8..8), 0..20),
        ys in proptest::collection::vec((0u8..8, 0u8..8), 0..20),
    ) {
        let mk = |mode, pairs: &[(u8, u8)]| {
            Relation::from_tuples_in(
                mode, 2, pairs.iter().map(|&(a, b)| tuple2(a, b)).collect::<Vec<_>>(),
            ).unwrap()
        };
        let (bx, by) = (mk(StorageMode::Btree, &xs), mk(StorageMode::Btree, &ys));
        for mode in ALL_MODES {
            let (mx, my) = (mk(mode, &xs), mk(mode, &ys));
            prop_assert_eq!(mx.union(&my).unwrap(), bx.union(&by).unwrap());
            prop_assert_eq!(mx.intersect(&my).unwrap(), bx.intersect(&by).unwrap());
            prop_assert_eq!(mx.difference(&my).unwrap(), bx.difference(&by).unwrap());
            // Mixed-mode operands hit the cross-engine paths.
            prop_assert_eq!(mx.union(&by).unwrap(), bx.union(&my).unwrap());
            prop_assert_eq!(mx.intersect(&by).unwrap(), bx.intersect(&my).unwrap());
            prop_assert_eq!(mx.difference(&by).unwrap(), bx.difference(&my).unwrap());
            prop_assert_eq!(mx.is_subset(&by), bx.is_subset(&my));
        }
    }

    /// Random stratified programs (negation, disequality, recursion)
    /// evaluate identically under naive and semi-naive strategies on
    /// all three storage engines — six evaluations, one answer.
    #[test]
    fn stratified_evaluation_is_engine_independent(
        pairs in proptest::collection::vec((0u8..6, 0u8..6), 0..14),
        picks in proptest::collection::vec(any::<bool>(), RULE_POOL.len() - 1),
    ) {
        let program = rtx::query::parser::parse_program(&random_program(&picks)).unwrap();
        let mut outs: Vec<Instance> = Vec::new();
        for mode in ALL_MODES {
            let db = edge_instance_in(mode, &pairs);
            for strategy in [EvalStrategy::Naive, EvalStrategy::SemiNaive] {
                outs.push(program.eval_with(&db, strategy).unwrap());
            }
        }
        for other in &outs[1..] {
            prop_assert_eq!(&outs[0], other);
        }
    }

    /// The incremental fixpoint over a random schedule of EDB deltas
    /// agrees with from-scratch evaluation, whichever of the three
    /// engines holds the base instance — the counting/DRed path
    /// against the oracle.
    #[test]
    fn incremental_fixpoint_matches_scratch_on_both_engines(
        base in proptest::collection::vec((0u8..6, 0u8..6), 0..10),
        ticks in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 1..6), 0..5),
        picks in proptest::collection::vec(any::<bool>(), RULE_POOL.len() - 1),
    ) {
        let program = rtx::query::parser::parse_program(&random_program(&picks)).unwrap();
        for mode in ALL_MODES {
            let mut db = edge_instance_in(mode, &base);
            let mut maintained = MaintainedFixpoint::new(&program).unwrap();
            maintained.initialize(&db).unwrap();
            for tick in &ticks {
                let mut next = db.clone();
                for op in tick {
                    let (ins, a, b) = *op;
                    if ins {
                        next.insert_fact(fact!("e", a as i64, b as i64)).unwrap();
                    } else {
                        next.remove_fact(&fact!("e", a as i64, b as i64));
                    }
                }
                let delta = next.diff(&db);
                db = next;
                let incr = maintained.apply(&delta).unwrap().clone();
                let scratch = program.eval(&db).unwrap();
                prop_assert_eq!(incr, scratch);
            }
        }
    }

    /// Interner determinism: interning the same value always yields the
    /// same id, the id round-trips to the value, and id-level ordering
    /// agrees with value ordering.
    #[test]
    fn interner_is_deterministic_and_order_faithful(
        ints in proptest::collection::vec(-1000i64..1000, 0..40),
        syms in proptest::collection::vec(0u16..40, 0..20),
    ) {
        let mut values: Vec<Value> = ints.iter().map(|&i| Value::Int(i)).collect();
        values.extend(syms.iter().map(|n| Value::sym(format!("storage-sym-{n}").as_str())));
        for v in &values {
            let id = Vid::from_value(v);
            prop_assert_eq!(id, Vid::from_value(v), "same value, same id");
            prop_assert_eq!(&id.value(), v, "ids round-trip");
            prop_assert_eq!(id.cmp_value(v), std::cmp::Ordering::Equal);
        }
        for a in &values {
            for b in &values {
                let (ia, ib) = (Vid::from_value(a), Vid::from_value(b));
                prop_assert_eq!(
                    ia.cmp_structural(ib), a.cmp(b),
                    "structural id order mirrors value order"
                );
                if ia.raw_ordered() && ib.raw_ordered() {
                    prop_assert_eq!(
                        ia.raw().cmp(&ib.raw()), a.cmp(b),
                        "inline ids compare by raw bits"
                    );
                }
            }
        }
    }
}

/// Interning is deterministic across threads racing on the same fresh
/// symbols: every thread resolves each name to the same id.
#[test]
fn interner_agrees_across_racing_threads() {
    let names: Vec<String> = (0..64).map(|i| format!("storage-race-{i}")).collect();
    let ids: Vec<Vec<Vid>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let names = &names;
                scope.spawn(move || {
                    names
                        .iter()
                        .map(|n| Vid::from_value(&Value::sym(n.as_str())))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for other in &ids[1..] {
        assert_eq!(&ids[0], other);
    }
    for (n, id) in names.iter().zip(&ids[0]) {
        assert_eq!(id.value(), Value::sym(n.as_str()));
    }
}

/// Instances built from the same fact stream are equal whatever engine
/// backs them, and `Instance::diff`/`apply_delta` transport across
/// engines at the instance level too.
#[test]
fn instance_deltas_transport_across_engines() {
    let schema = Schema::new().with("E", 2).with("S", 1);
    let facts: Vec<Fact> = vec![
        fact!("E", 1, 2),
        fact!("E", 2, 3),
        fact!("S", 7),
        fact!("E", 1, 2), // duplicate: second insert is a no-op
    ];
    let bt = Instance::from_facts_in(StorageMode::Btree, schema.clone(), facts.clone()).unwrap();
    for mode in ALL_MODES {
        let inst = Instance::from_facts_in(mode, schema.clone(), facts.clone()).unwrap();
        assert_eq!(inst, bt);
        assert_eq!(inst.fact_count(), 3);

        let mut target =
            Instance::from_facts_in(mode, schema.clone(), vec![fact!("E", 9, 9), fact!("S", 7)])
                .unwrap();
        let delta = bt.diff(&target);
        target.apply_delta(&delta).unwrap();
        assert_eq!(target, bt);
    }
}

/// Directed promotion-boundary test: inserting to N−1 stays in the
/// small regime, the Nth insert promotes (exactly once), and N+1
/// keeps the promoted representation — all value-equal to the oracle
/// at every boundary.
#[test]
fn adaptive_promotion_boundary_pins_threshold() {
    let n = adaptive_promote_len();
    let mut ad = Relation::empty_in(StorageMode::Adaptive, 1);
    let mut bt = Relation::empty_in(StorageMode::Btree, 1);
    for i in 0..(n + 1) as i64 {
        ad.insert(vec![Value::Int(i)].into()).unwrap();
        bt.insert(vec![Value::Int(i)].into()).unwrap();
        let len = (i + 1) as usize;
        if len < n {
            assert!(ad.in_small_regime(), "below N stays small (len {len})");
            assert_eq!(ad.storage_stats().promotions, 0);
        } else {
            assert!(
                !ad.in_small_regime(),
                "N and beyond are promoted (len {len})"
            );
            assert_eq!(ad.storage_stats().promotions, 1, "promotion happens once");
        }
        assert_eq!(ad, bt);
    }
    assert_eq!(ad.mode(), StorageMode::Adaptive);
}

/// Directed hysteresis test: churn (scan + insert/remove cycles) at
/// the re-entry floor never promotes, while the same churn one above
/// the floor promotes exactly once and never demotes back on point
/// removals.
#[test]
fn adaptive_churn_at_hysteresis_edge_does_not_flap() {
    let floor = adaptive_reentry_len();
    let at_floor = Relation::from_tuples_in(
        StorageMode::Adaptive,
        1,
        (0..floor as i64).map(|i| vec![Value::Int(i)].into()),
    )
    .unwrap();
    // Grown by point inserts so it is genuinely in the small regime
    // one above the floor (a bulk construction above the floor would
    // start out promoted).
    let mut above = Relation::empty_in(StorageMode::Adaptive, 1);
    for i in 0..=(floor as i64) {
        above.insert(vec![Value::Int(i)].into()).unwrap();
    }
    assert!(above.in_small_regime());
    let churn = |mut r: Relation| {
        for _ in 0..16 {
            let _ = r.iter().count(); // order demand
            assert!(r.remove(&vec![Value::Int(0)].into()));
            assert!(r.insert(vec![Value::Int(0)].into()).unwrap());
        }
        r
    };
    let at_floor = churn(at_floor);
    assert!(at_floor.in_small_regime(), "churn at the floor stays small");
    assert_eq!(at_floor.storage_stats().promotions, 0);
    let above = churn(above);
    assert!(!above.in_small_regime(), "churn above the floor promotes");
    assert_eq!(above.storage_stats().promotions, 1, "…exactly once");
}

/// Directed clear-and-regrow test at the instance level: a relation
/// grown past the promotion threshold, then bulk-replaced by a tiny
/// value through `set_relation`, re-enters the small regime — and can
/// grow right back up, re-promoting.
#[test]
fn adaptive_clear_and_regrow_reenters_small_regime() {
    let n = adaptive_promote_len();
    let schema = Schema::new().with("E", 2);
    let mut inst = Instance::empty_in(StorageMode::Adaptive, schema);
    for i in 0..n as i64 {
        inst.insert_fact(fact!("E", i, i)).unwrap();
    }
    let name = "E".into();
    let big = inst.relation(&name).unwrap();
    assert!(!big.in_small_regime(), "grown past N: promoted");

    // Bulk replace with a tiny relation: re-enters the small regime.
    let tiny = Relation::from_tuples_in(StorageMode::Adaptive, 2, vec![tuple2(1, 1)]).unwrap();
    inst.set_relation("E", tiny).unwrap();
    let small = inst.relation(&name).unwrap();
    assert_eq!(small.len(), 1);
    assert!(
        small.in_small_regime(),
        "bulk rebuild re-enters the small regime"
    );

    // …and a query output (plain columnar run) landing via
    // set_relation is re-housed adaptively too.
    let as_output = Relation::from_tuples_in(StorageMode::Columnar, 2, vec![tuple2(2, 2)]).unwrap();
    inst.set_relation("E", as_output).unwrap();
    let rehoused = inst.relation(&name).unwrap();
    assert_eq!(rehoused.mode(), StorageMode::Adaptive);
    assert!(rehoused.in_small_regime());

    // Regrow: promotes again.
    for i in 0..n as i64 {
        inst.insert_fact(fact!("E", i, -i)).unwrap();
    }
    let regrown = inst.relation(&name).unwrap();
    assert!(!regrown.in_small_regime(), "regrowth re-promotes");
    assert_eq!(regrown.mode(), StorageMode::Adaptive);
}

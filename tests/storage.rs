//! Property tests for the storage engines: the columnar sorted-run
//! engine against the B-tree oracle (`RTX_STORAGE=btree`), under the
//! schedules that exercise every adoption path — random interleaved
//! inserts and deletes, `diff`/`apply_delta` round trips, set algebra,
//! random stratified programs under naive and semi-naive evaluation,
//! and the incremental fixpoint. Plus determinism of the process-wide
//! value interner, which both engines share.
//!
//! Every test here builds **both** representations explicitly with
//! `empty_in`/`from_facts_in`, so the suite is oracle-complete no
//! matter what `RTX_STORAGE` the ambient process runs under.

use proptest::prelude::*;
use rtx::query::{EvalStrategy, MaintainedFixpoint};
use rtx::relational::{fact, Fact, Instance, Relation, Schema, StorageMode, Tuple, Value, Vid};

fn tuple2(a: u8, b: u8) -> Tuple {
    vec![Value::Int(a as i64), Value::Int(b as i64)].into()
}

/// One mutation in a randomized schedule: `(insert?, a, b)` — insert
/// `(a, b)` when the flag is set, otherwise remove it. (The compat
/// proptest has no mapping combinators, so schedules stay raw tuples.)
fn op_strategy() -> (
    proptest::strategy::Any<bool>,
    std::ops::Range<u8>,
    std::ops::Range<u8>,
) {
    (any::<bool>(), 0u8..12, 0u8..12)
}

fn edge_instance_in(mode: StorageMode, pairs: &[(u8, u8)]) -> Instance {
    let mut i = Instance::empty_in(mode, Schema::new().with("E", 2));
    for &(a, b) in pairs {
        i.insert_fact(fact!("E", a as i64, b as i64)).unwrap();
    }
    i
}

/// The pool of always-safe stratified rules a random program draws
/// from: stratum 1 is positive (and optionally recursive) over the EDB
/// `E`, stratum 2 negates stratum-1 predicates. Index 0 is mandatory so
/// `P` is never undefined under negation.
const RULE_POOL: [&str; 8] = [
    "p(X,Y) :- e(X,Y).",
    "p(X,Z) :- p(X,Y), e(Y,Z).",
    "q(X) :- e(X,Y).",
    "q(Y) :- e(X,Y).",
    "r(X,Y) :- e(X,Y), !p(Y,X).",
    "s(X) :- q(X), !p(X,X).",
    "s(Y) :- e(X,Y), X != Y.",
    "w(X,Y) :- e(X,Y), q(Y), !s(X).",
];

fn random_program(picks: &[bool]) -> String {
    let mut src = String::from(RULE_POOL[0]);
    for (i, rule) in RULE_POOL.iter().enumerate().skip(1) {
        if *picks.get(i - 1).unwrap_or(&false) {
            src.push(' ');
            src.push_str(rule);
        }
    }
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Columnar and B-tree relations agree tuple-for-tuple under any
    /// interleaving of inserts and deletes — the schedule that forces
    /// tail accumulation, run adoption, and tombstone handling in the
    /// columnar engine.
    #[test]
    fn columnar_matches_btree_under_mutation_schedules(
        ops in proptest::collection::vec(op_strategy(), 0..60),
    ) {
        let mut col = Relation::empty_in(StorageMode::Columnar, 2);
        let mut bt = Relation::empty_in(StorageMode::Btree, 2);
        for op in &ops {
            let (ins, a, b) = *op;
            if ins {
                let (x, y) = (col.insert(tuple2(a, b)).unwrap(),
                              bt.insert(tuple2(a, b)).unwrap());
                prop_assert_eq!(x, y, "insert novelty must agree");
            } else {
                prop_assert_eq!(col.remove(&tuple2(a, b)), bt.remove(&tuple2(a, b)));
            }
            prop_assert_eq!(col.len(), bt.len());
        }
        // Cross-mode equality is content equality.
        prop_assert_eq!(&col, &bt);
        prop_assert!(col.iter().eq(bt.iter()), "iteration order is the sorted order");
        for a in 0..12u8 {
            for b in 0..12u8 {
                prop_assert_eq!(col.contains(&tuple2(a, b)), bt.contains(&tuple2(a, b)));
            }
        }
    }

    /// `diff` and `apply_delta` round-trip across engines: a delta
    /// computed between B-tree relations moves a columnar relation to
    /// the same contents, and vice versa.
    #[test]
    fn deltas_transport_across_engines(
        from in proptest::collection::vec((0u8..10, 0u8..10), 0..25),
        to in proptest::collection::vec((0u8..10, 0u8..10), 0..25),
    ) {
        let mk = |mode, pairs: &[(u8, u8)]| {
            Relation::from_tuples_in(
                mode, 2, pairs.iter().map(|&(a, b)| tuple2(a, b)).collect::<Vec<_>>(),
            ).unwrap()
        };
        let bt_from = mk(StorageMode::Btree, &from);
        let bt_to = mk(StorageMode::Btree, &to);
        let col_from = mk(StorageMode::Columnar, &from);
        let col_to = mk(StorageMode::Columnar, &to);

        let delta_bt = bt_to.diff(&bt_from).unwrap();
        let delta_col = col_to.diff(&col_from).unwrap();
        prop_assert_eq!(delta_bt.added(), delta_col.added());
        prop_assert_eq!(delta_bt.removed(), delta_col.removed());

        let mut col = col_from.clone();
        col.apply_delta(&delta_bt).unwrap();
        prop_assert_eq!(&col, &bt_to);
        let mut bt = bt_from.clone();
        bt.apply_delta(&delta_col).unwrap();
        prop_assert_eq!(&bt, &col_to);
    }

    /// The set algebra (union / intersect / difference / subset) gives
    /// identical answers whichever engine holds either operand.
    #[test]
    fn set_algebra_agrees_across_engines(
        xs in proptest::collection::vec((0u8..8, 0u8..8), 0..20),
        ys in proptest::collection::vec((0u8..8, 0u8..8), 0..20),
    ) {
        let mk = |mode, pairs: &[(u8, u8)]| {
            Relation::from_tuples_in(
                mode, 2, pairs.iter().map(|&(a, b)| tuple2(a, b)).collect::<Vec<_>>(),
            ).unwrap()
        };
        let (cx, cy) = (mk(StorageMode::Columnar, &xs), mk(StorageMode::Columnar, &ys));
        let (bx, by) = (mk(StorageMode::Btree, &xs), mk(StorageMode::Btree, &ys));
        prop_assert_eq!(cx.union(&cy).unwrap(), bx.union(&by).unwrap());
        prop_assert_eq!(cx.intersect(&cy).unwrap(), bx.intersect(&by).unwrap());
        prop_assert_eq!(cx.difference(&cy).unwrap(), bx.difference(&by).unwrap());
        // Mixed-mode operands hit the cross-engine paths.
        prop_assert_eq!(cx.union(&by).unwrap(), bx.union(&cy).unwrap());
        prop_assert_eq!(cx.is_subset(&by), bx.is_subset(&cy));
    }

    /// Random stratified programs (negation, disequality, recursion)
    /// evaluate identically under naive and semi-naive strategies on
    /// both storage engines — four evaluations, one answer.
    #[test]
    fn stratified_evaluation_is_engine_independent(
        pairs in proptest::collection::vec((0u8..6, 0u8..6), 0..14),
        picks in proptest::collection::vec(any::<bool>(), RULE_POOL.len() - 1),
    ) {
        let program = rtx::query::parser::parse_program(&random_program(&picks)).unwrap();
        let mut outs: Vec<Instance> = Vec::new();
        for mode in [StorageMode::Columnar, StorageMode::Btree] {
            let db = edge_instance_in(mode, &pairs);
            for strategy in [EvalStrategy::Naive, EvalStrategy::SemiNaive] {
                outs.push(program.eval_with(&db, strategy).unwrap());
            }
        }
        for other in &outs[1..] {
            prop_assert_eq!(&outs[0], other);
        }
    }

    /// The incremental fixpoint over a random schedule of EDB deltas
    /// agrees with from-scratch evaluation, whichever engine holds the
    /// base instance — the counting/DRed path against the oracle.
    #[test]
    fn incremental_fixpoint_matches_scratch_on_both_engines(
        base in proptest::collection::vec((0u8..6, 0u8..6), 0..10),
        ticks in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 1..6), 0..5),
        picks in proptest::collection::vec(any::<bool>(), RULE_POOL.len() - 1),
    ) {
        let program = rtx::query::parser::parse_program(&random_program(&picks)).unwrap();
        for mode in [StorageMode::Columnar, StorageMode::Btree] {
            let mut db = edge_instance_in(mode, &base);
            let mut maintained = MaintainedFixpoint::new(&program).unwrap();
            maintained.initialize(&db).unwrap();
            for tick in &ticks {
                let mut next = db.clone();
                for op in tick {
                    let (ins, a, b) = *op;
                    if ins {
                        next.insert_fact(fact!("E", a as i64, b as i64)).unwrap();
                    } else {
                        next.remove_fact(&fact!("E", a as i64, b as i64));
                    }
                }
                let delta = next.diff(&db);
                db = next;
                let incr = maintained.apply(&delta).unwrap().clone();
                let scratch = program.eval(&db).unwrap();
                prop_assert_eq!(incr, scratch);
            }
        }
    }

    /// Interner determinism: interning the same value always yields the
    /// same id, the id round-trips to the value, and id-level ordering
    /// agrees with value ordering.
    #[test]
    fn interner_is_deterministic_and_order_faithful(
        ints in proptest::collection::vec(-1000i64..1000, 0..40),
        syms in proptest::collection::vec(0u16..40, 0..20),
    ) {
        let mut values: Vec<Value> = ints.iter().map(|&i| Value::Int(i)).collect();
        values.extend(syms.iter().map(|n| Value::sym(format!("storage-sym-{n}").as_str())));
        for v in &values {
            let id = Vid::from_value(v);
            prop_assert_eq!(id, Vid::from_value(v), "same value, same id");
            prop_assert_eq!(&id.value(), v, "ids round-trip");
            prop_assert_eq!(id.cmp_value(v), std::cmp::Ordering::Equal);
        }
        for a in &values {
            for b in &values {
                let (ia, ib) = (Vid::from_value(a), Vid::from_value(b));
                prop_assert_eq!(
                    ia.cmp_structural(ib), a.cmp(b),
                    "structural id order mirrors value order"
                );
                if ia.raw_ordered() && ib.raw_ordered() {
                    prop_assert_eq!(
                        ia.raw().cmp(&ib.raw()), a.cmp(b),
                        "inline ids compare by raw bits"
                    );
                }
            }
        }
    }
}

/// Interning is deterministic across threads racing on the same fresh
/// symbols: every thread resolves each name to the same id.
#[test]
fn interner_agrees_across_racing_threads() {
    let names: Vec<String> = (0..64).map(|i| format!("storage-race-{i}")).collect();
    let ids: Vec<Vec<Vid>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let names = &names;
                scope.spawn(move || {
                    names
                        .iter()
                        .map(|n| Vid::from_value(&Value::sym(n.as_str())))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for other in &ids[1..] {
        assert_eq!(&ids[0], other);
    }
    for (n, id) in names.iter().zip(&ids[0]) {
        assert_eq!(id.value(), Value::sym(n.as_str()));
    }
}

/// A columnar instance and a B-tree instance built from the same fact
/// stream are equal, and `Instance::diff`/`apply_delta` transport
/// across engines at the instance level too.
#[test]
fn instance_deltas_transport_across_engines() {
    let schema = Schema::new().with("E", 2).with("S", 1);
    let facts: Vec<Fact> = vec![
        fact!("E", 1, 2),
        fact!("E", 2, 3),
        fact!("S", 7),
        fact!("E", 1, 2), // duplicate: second insert is a no-op
    ];
    let col =
        Instance::from_facts_in(StorageMode::Columnar, schema.clone(), facts.clone()).unwrap();
    let bt = Instance::from_facts_in(StorageMode::Btree, schema.clone(), facts).unwrap();
    assert_eq!(col, bt);
    assert_eq!(col.fact_count(), 3);

    let mut target = Instance::from_facts_in(
        StorageMode::Columnar,
        schema,
        vec![fact!("E", 9, 9), fact!("S", 7)],
    )
    .unwrap();
    let delta = bt.diff(&target);
    target.apply_delta(&delta).unwrap();
    assert_eq!(target, bt);
}

//! Property tests for the sharded round-synchronous runtime
//! (`rtx_net::run_sharded`): the determinism invariant — sharded
//! execution is bit-identical to the serial reference for every thread
//! count and shard plan — plus output agreement with the seed drivers.

use proptest::prelude::*;
use rtx::calm::constructions::distribute::distribute_monotone;
use rtx::calm::constructions::flood::{flood_transducer, FloodMode};
use rtx::net::{
    run, ExecMode, FifoRoundRobin, HorizontalPartition, Network, RoundScheduling, RunBudget,
    ShardOptions, ShardPlan,
};
use rtx::query::{Query, QueryRef};
use rtx::relational::{fact, Fact, Instance, Schema};
use std::sync::Arc;

fn set_instance(values: &[i64]) -> Instance {
    let sch = Schema::new().with("S", 1);
    let facts: Vec<Fact> = values.iter().map(|&v| fact!("S", v)).collect();
    Instance::from_facts(sch, facts).unwrap()
}

fn edge_instance(pairs: &[(u8, u8)]) -> Instance {
    let sch = Schema::new().with("S", 2);
    let mut i = Instance::empty(sch);
    for &(a, b) in pairs {
        i.insert_fact(fact!("S", a as i64, b as i64)).unwrap();
    }
    i
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole invariant: for random connected topologies, random
    /// partitions, and every (thread count, shard plan) combination,
    /// the sharded FIFO round-synchronous run is bit-identical to the
    /// serial reference — same quiescent output, same per-node outputs,
    /// same step/message counters, same final configuration, and the
    /// same transition log, record for record.
    #[test]
    fn sharded_equals_serial_bit_for_bit(
        values in proptest::collection::btree_set(0i64..40, 1..5),
        nodes in 2usize..9,
        topo_seed in 0u64..500,
        part_seed in 0u64..500) {
        use rand::SeedableRng;
        let input = set_instance(&values.iter().copied().collect::<Vec<_>>());
        let net = Network::random_connected_seeded(nodes, 0.2, topo_seed).unwrap();
        let t = flood_transducer(input.schema(), FloodMode::Dedup, None).unwrap();
        let mut prng = rand::rngs::StdRng::seed_from_u64(part_seed);
        let p = HorizontalPartition::random(&net, &input, 0.1, &mut prng);
        let budget = RunBudget::steps(500_000);
        let serial = rtx::net::run_sharded(
            &net, &t, &p, &ShardOptions::serial().with_log(), &budget).unwrap();
        prop_assert!(serial.outcome.quiescent);
        for threads in [2usize, 3, 4, 8] {
            for plan in [ShardPlan::Contiguous, ShardPlan::RoundRobin, ShardPlan::Hash] {
                let opts = ShardOptions::sharded(threads).with_plan(plan).with_log();
                let sharded = rtx::net::run_sharded(&net, &t, &p, &opts, &budget).unwrap();
                prop_assert_eq!(&sharded.outcome.output, &serial.outcome.output,
                                "output diverged: threads={} plan={:?}", threads, plan);
                prop_assert_eq!(&sharded.outcome.outputs_per_node,
                                &serial.outcome.outputs_per_node);
                prop_assert_eq!(sharded.outcome.steps, serial.outcome.steps);
                prop_assert_eq!(sharded.outcome.heartbeats, serial.outcome.heartbeats);
                prop_assert_eq!(sharded.outcome.deliveries, serial.outcome.deliveries);
                prop_assert_eq!(sharded.outcome.messages_enqueued,
                                serial.outcome.messages_enqueued);
                prop_assert_eq!(sharded.rounds, serial.rounds);
                prop_assert!(sharded.outcome.final_config == serial.outcome.final_config,
                             "final configuration diverged: threads={} plan={:?}",
                             threads, plan);
                prop_assert_eq!(&sharded.log, &serial.log,
                                "transition log diverged: threads={} plan={:?}",
                                threads, plan);
            }
        }
    }

    /// Under sharded *random* scheduling the delivery order differs from
    /// FIFO, but a confluent transducer must still reach the same
    /// quiescent output — and the run must be bit-identical across
    /// thread counts for a fixed seed.
    #[test]
    fn sharded_random_scheduling_output_agrees(
        values in proptest::collection::btree_set(0i64..40, 1..5),
        nodes in 2usize..8,
        topo_seed in 0u64..500,
        sched_seed in 0u64..1000) {
        let input = set_instance(&values.iter().copied().collect::<Vec<_>>());
        let net = Network::random_connected_seeded(nodes, 0.2, topo_seed).unwrap();
        let t = flood_transducer(input.schema(), FloodMode::Dedup, None).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input);
        let budget = RunBudget::steps(500_000);
        let fifo = rtx::net::run_sharded(
            &net, &t, &p, &ShardOptions::serial(), &budget).unwrap();
        prop_assert!(fifo.outcome.quiescent);
        let rand_serial = rtx::net::run_sharded(
            &net, &t, &p,
            &ShardOptions::serial()
                .with_scheduling(RoundScheduling::Random { seed: sched_seed })
                .with_log(),
            &budget).unwrap();
        let rand_sharded = rtx::net::run_sharded(
            &net, &t, &p,
            &ShardOptions::sharded(4)
                .with_scheduling(RoundScheduling::Random { seed: sched_seed })
                .with_log(),
            &budget).unwrap();
        prop_assert!(rand_sharded.outcome.quiescent);
        prop_assert_eq!(&rand_sharded.log, &rand_serial.log,
                        "random scheduling must be thread-count independent");
        prop_assert_eq!(&rand_sharded.outcome.output, &fifo.outcome.output,
                        "confluent transducer output must not depend on delivery order");
    }

    /// Cross-driver agreement: the round-synchronous executor and the
    /// seed's scheduler-driven driver compute the same query answer on
    /// distributed transitive closure.
    #[test]
    fn sharded_tc_agrees_with_seed_driver(
        pairs in proptest::collection::vec((0u8..5, 0u8..5), 1..7),
        nodes in 2usize..6,
        topo_seed in 0u64..300) {
        let input = edge_instance(&pairs);
        let q: QueryRef = {
            let p = rtx::query::parser::parse_program(
                "T(X,Y) :- S(X,Y). T(X,Z) :- T(X,Y), S(Y,Z).").unwrap();
            Arc::new(rtx::query::DatalogQuery::new(p, "T").unwrap())
        };
        let expected = q.eval(&input).unwrap();
        let t = distribute_monotone(q, input.schema(), FloodMode::Dedup).unwrap();
        let net = Network::random_connected_seeded(nodes, 0.3, topo_seed).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input);
        let budget = RunBudget::steps(500_000);
        let seed_run = run(&net, &t, &p, &mut FifoRoundRobin::new(), &budget).unwrap();
        let sharded = rtx::net::run_sharded(
            &net, &t, &p, &ShardOptions::sharded(4), &budget).unwrap();
        prop_assert!(seed_run.quiescent && sharded.outcome.quiescent);
        prop_assert_eq!(&sharded.outcome.output, &expected);
        prop_assert_eq!(&sharded.outcome.output, &seed_run.output);
    }
}

/// `ExecMode::sharded_auto` honours `RTX_NET_THREADS` (the CI matrix
/// sets it to 4), and auto-sharded runs stay on the deterministic path.
#[test]
fn auto_threads_run_matches_serial() {
    let input = set_instance(&[1, 2, 3, 4, 5]);
    let net = Network::grid(4, 4).unwrap();
    let t = flood_transducer(input.schema(), FloodMode::Dedup, None).unwrap();
    let p = HorizontalPartition::round_robin(&net, &input);
    let budget = RunBudget::steps(500_000);
    let serial =
        rtx::net::run_sharded(&net, &t, &p, &ShardOptions::serial().with_log(), &budget).unwrap();
    let auto = ShardOptions {
        mode: ExecMode::sharded_auto(),
        ..ShardOptions::default()
    };
    let sharded = rtx::net::run_sharded(&net, &t, &p, &auto.with_log(), &budget).unwrap();
    assert!(sharded.outcome.quiescent);
    assert_eq!(sharded.outcome.output, serial.outcome.output);
    assert_eq!(sharded.log, serial.log);
    if let Ok(v) = std::env::var("RTX_NET_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            assert_eq!(sharded.threads_used, n.clamp(1, net.len()));
        }
    }
}

//! Cross-crate integration tests: parse queries with `rtx-query`, wrap
//! them into transducers with `rtx-calm`, run them on `rtx-net`
//! networks, and validate against centralized evaluation.

use rtx::calm::constructions::datalog_dist::{distribute_datalog, transitive_closure_program};
use rtx::calm::constructions::distribute::{distribute_any, distribute_monotone};
use rtx::calm::constructions::flood::FloodMode;
use rtx::calm::examples;
use rtx::net::{
    run, FifoRoundRobin, HorizontalPartition, LifoRoundRobin, Network, RandomScheduler, RunBudget,
};
use rtx::query::{DatalogQuery, Query, QueryRef};
use rtx::relational::{fact, Instance, Relation, Schema};
use std::sync::Arc;

fn edges(pairs: &[(i64, i64)]) -> Instance {
    let sch = Schema::new().with("E", 2);
    let mut i = Instance::empty(sch);
    for &(a, b) in pairs {
        i.insert_fact(fact!("E", a, b)).unwrap();
    }
    i
}

#[test]
fn parsed_datalog_distributed_on_every_builtin_topology() {
    let program =
        rtx::query::parser::parse_program("T(X,Y) :- E(X,Y). T(X,Z) :- T(X,Y), E(Y,Z).").unwrap();
    let q: QueryRef = Arc::new(DatalogQuery::new(program, "T").unwrap());
    let input = edges(&[(1, 2), (2, 3), (3, 4), (5, 1)]);
    let expected = q.eval(&input).unwrap();

    let t = distribute_monotone(q, input.schema(), FloodMode::Dedup).unwrap();
    for net in [
        Network::single(),
        Network::line(4).unwrap(),
        Network::ring(5).unwrap(),
        Network::star(4).unwrap(),
        Network::clique(4).unwrap(),
        Network::ring4_with_chord(),
    ] {
        let p = HorizontalPartition::round_robin(&net, &input);
        let out = run(
            &net,
            &t,
            &p,
            &mut FifoRoundRobin::new(),
            &RunBudget::steps(500_000),
        )
        .unwrap();
        assert!(out.quiescent, "not quiescent on {net:?}");
        assert_eq!(out.output, expected, "wrong closure on {net:?}");
    }
}

#[test]
fn random_topologies_random_partitions_random_schedules() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let program = transitive_closure_program();
    let q: QueryRef = Arc::new(DatalogQuery::new(program.clone(), "T").unwrap());
    let input = edges(&[(1, 2), (2, 3), (3, 1), (4, 5)]);
    let expected = q.eval(&input).unwrap();
    let t = distribute_datalog(&program, &"T".into(), FloodMode::Dedup).unwrap();

    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Network::random_connected(2 + (seed as usize % 4), 0.3, &mut rng).unwrap();
        let p = HorizontalPartition::random(&net, &input, 0.2, &mut rng);
        let out = run(
            &net,
            &t,
            &p,
            &mut RandomScheduler::seeded(seed * 31 + 7),
            &RunBudget::steps(500_000),
        )
        .unwrap();
        assert!(out.quiescent, "seed {seed}");
        assert_eq!(out.output, expected, "seed {seed}");
    }
}

#[test]
fn theorem_6_1_distributes_a_while_query_end_to_end() {
    // nonmonotone while-ish query via FO sentence: "E is a total relation
    // over its active domain" — every pair of adom elements is an edge.
    let q: QueryRef = Arc::new(
        rtx::query::parser::parse_fo_query("() <- forall X, Y . E(X,X) | E(X,Y) | E(Y,X) | X = Y")
            .unwrap(),
    );
    let yes = edges(&[(1, 2), (2, 1)]);
    let no = edges(&[(1, 2), (3, 4)]);
    for input in [&yes, &no] {
        let central = q.eval(input).unwrap().as_bool();
        let t = distribute_any(q.clone(), input.schema()).unwrap();
        let net = Network::line(3).unwrap();
        let p = HorizontalPartition::round_robin(&net, input);
        let out = run(
            &net,
            &t,
            &p,
            &mut LifoRoundRobin::new(),
            &RunBudget::steps(500_000),
        )
        .unwrap();
        assert!(out.quiescent);
        assert_eq!(out.output.as_bool(), central);
    }
}

#[test]
fn outputs_are_never_retracted_along_any_run() {
    // sample prefixes of a run and check output growth (Proposition 1's
    // premise: out(ρ) accumulates)
    let t = examples::ex3_transitive_closure(true).unwrap();
    let sch = Schema::new().with("S", 2);
    let input = Instance::from_facts(
        sch,
        vec![fact!("S", 1, 2), fact!("S", 2, 3), fact!("S", 3, 4)],
    )
    .unwrap();
    let net = Network::line(3).unwrap();
    let p = HorizontalPartition::round_robin(&net, &input);
    let mut previous = Relation::empty(2);
    for steps in [1usize, 5, 10, 25, 50, 100, 500] {
        let out = run(
            &net,
            &t,
            &p,
            &mut FifoRoundRobin::new(),
            &RunBudget::steps(steps),
        )
        .unwrap();
        assert!(
            previous.is_subset(&out.output),
            "outputs must accumulate: step budget {steps}"
        );
        previous = out.output;
    }
}

#[test]
fn quiescence_point_exists_for_every_library_transducer() {
    // Proposition 1: finitely many output tuples; our quiescence-driven
    // runs terminate for all draining transducers of the library.
    let sch1 = Schema::new().with("S", 1);
    let sch2 = Schema::new().with("S", 2);
    let schab = Schema::new().with("A", 1).with("B", 1);
    let cases: Vec<(rtx::transducer::Transducer, Instance)> = vec![
        (
            examples::ex2_first_element().unwrap(),
            Instance::from_facts(sch1.clone(), vec![fact!("S", 1)]).unwrap(),
        ),
        (
            examples::ex3_equality_selection().unwrap(),
            Instance::from_facts(sch2.clone(), vec![fact!("S", 1, 1)]).unwrap(),
        ),
        (
            examples::ex3_transitive_closure(true).unwrap(),
            Instance::from_facts(sch2, vec![fact!("S", 1, 2)]).unwrap(),
        ),
        (
            examples::ex4_echo().unwrap(),
            Instance::from_facts(sch1.clone(), vec![fact!("S", 2)]).unwrap(),
        ),
        (
            examples::ex9_ab_nonempty().unwrap(),
            Instance::from_facts(schab, vec![fact!("A", 1)]).unwrap(),
        ),
        (
            examples::ex10_emptiness().unwrap(),
            Instance::empty(sch1.clone()),
        ),
        (
            examples::ex15_ping().unwrap(),
            Instance::from_facts(sch1, vec![fact!("S", 9)]).unwrap(),
        ),
    ];
    let net = Network::ring(3).unwrap();
    for (t, input) in cases {
        let p = HorizontalPartition::round_robin(&net, &input);
        let out = run(
            &net,
            &t,
            &p,
            &mut RandomScheduler::seeded(11),
            &RunBudget::steps(500_000),
        )
        .unwrap();
        assert!(out.quiescent, "{} did not quiesce", t.name());
    }
}

#[test]
fn per_node_outputs_union_to_global_output() {
    let t = examples::ex3_transitive_closure(true).unwrap();
    let sch = Schema::new().with("S", 2);
    let input = Instance::from_facts(sch, vec![fact!("S", 1, 2), fact!("S", 2, 3)]).unwrap();
    let net = Network::star(4).unwrap();
    let p = HorizontalPartition::round_robin(&net, &input);
    let out = run(
        &net,
        &t,
        &p,
        &mut FifoRoundRobin::new(),
        &RunBudget::steps(500_000),
    )
    .unwrap();
    let mut union = Relation::empty(2);
    for per in out.outputs_per_node.values() {
        union = union.union(per).unwrap();
    }
    assert_eq!(union, out.output);
}

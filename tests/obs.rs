//! Tier-1 tests for the observability layer (`rtx_obs`): trace
//! determinism across shard counts, registry snapshot/diff algebra,
//! zero-cost off mode, Chrome-JSON round-tripping, and the
//! registry ⇄ `ShardRunOutcome` reconciliation on the grid-256 flood.
//!
//! The trace level and the registry are process-global, so every test
//! that changes the level or reads a registry delta serializes on
//! [`obs_lock`].

use rtx::calm::constructions::flood::{flood_transducer, FloodMode};
use rtx::net::{run_sharded, HorizontalPartition, Network, RunBudget, ShardOptions};
use rtx::obs::trace::{self, TraceLevel};
use rtx::obs::{Hist, RunTrace, Snapshot};
use rtx::relational::{fact, Fact, Instance, Schema};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serialize tests that mutate the global trace level or capture
/// registry deltas (both are process-global state).
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn set_instance(n: i64) -> Instance {
    let sch = Schema::new().with("S", 1);
    let facts: Vec<Fact> = (0..n).map(|v| fact!("S", v)).collect();
    Instance::from_facts(sch, facts).unwrap()
}

/// Capture one full-level flood run at the given thread count.
fn captured_flood(net: &Network, input: &Instance, threads: usize) -> RunTrace {
    let t = flood_transducer(input.schema(), FloodMode::Dedup, None).unwrap();
    let p = HorizontalPartition::round_robin(net, input);
    let budget = RunBudget::steps(500_000);
    let opts = if threads <= 1 {
        ShardOptions::serial()
    } else {
        ShardOptions::sharded(threads)
    };
    let (out, trace) = trace::capture_run(|| run_sharded(net, &t, &p, &opts, &budget).unwrap());
    assert!(out.outcome.quiescent);
    trace
}

/// The tentpole determinism property: the merged event sequence is a
/// pure function of the computation — bit-identical across {1, 2, 4,
/// 8} shards, because workers drain per-job event fragments and the
/// coordinator splices them back in node order at its barrier.
#[test]
fn trace_is_deterministic_across_shard_counts() {
    let _g = obs_lock();
    let _full = trace::level_guard(TraceLevel::Full);
    let net = Network::grid(6, 6).unwrap();
    let input = set_instance(5);
    let reference = captured_flood(&net, &input, 1);
    assert!(!reference.events.is_empty());
    let ref_lines = reference.canonical_lines();
    for threads in [2usize, 4, 8] {
        let got = captured_flood(&net, &input, threads).canonical_lines();
        assert_eq!(
            got, ref_lines,
            "merged event sequence diverged at {threads} shards"
        );
    }
}

/// Off mode records nothing: no events, no registry delta — every
/// instrumentation hook reduced to one relaxed atomic load.
#[test]
fn off_mode_records_nothing() {
    let _g = obs_lock();
    let _off = trace::level_guard(TraceLevel::Off);
    let net = Network::ring(8).unwrap();
    let input = set_instance(4);
    let trace = captured_flood(&net, &input, 2);
    assert!(trace.events.is_empty(), "off mode buffered events");
    assert!(
        trace.counters.is_empty(),
        "off mode published counters: {:?}",
        trace.counters
    );
    assert_eq!(trace.dropped, 0);
}

/// Counters mode publishes the registry but buffers no events.
#[test]
fn counters_mode_publishes_without_events() {
    let _g = obs_lock();
    let _ctr = trace::level_guard(TraceLevel::Counters);
    let net = Network::ring(8).unwrap();
    let input = set_instance(4);
    let trace = captured_flood(&net, &input, 2);
    assert!(trace.events.is_empty(), "counters mode buffered events");
    assert_eq!(trace.counters.counter("net.runs"), 1);
    assert!(trace.counters.counter("net.steps") > 0);
}

/// Snapshot algebra: `diff` against the empty snapshot is the
/// identity, and `diff` then `absorb` of the earlier snapshot
/// round-trips to the later one.
#[test]
fn snapshot_diff_absorb_round_trips() {
    let mut earlier = Snapshot::default();
    earlier.counters.insert("a".into(), 3);
    earlier.counters.insert("b".into(), 10);
    let mut h = Hist::default();
    h.record(5);
    h.record(900);
    earlier.hists.insert("lat".into(), h);

    let mut later = earlier.clone();
    *later.counters.get_mut("a").unwrap() += 4;
    later.counters.insert("c".into(), 1);
    later.hists.get_mut("lat").unwrap().record(70_000);

    // identity: diff against empty
    assert_eq!(later.diff(&Snapshot::default()), later);
    // round-trip: earlier + (later - earlier) == later
    let delta = later.diff(&earlier);
    assert_eq!(delta.counter("a"), 4);
    assert_eq!(delta.counter("b"), 0, "unchanged counters drop from diffs");
    assert_eq!(delta.counter("c"), 1);
    let mut rebuilt = earlier.clone();
    rebuilt.absorb(&delta);
    // `b` dropped from the delta as zero, so compare counter-wise.
    for name in ["a", "b", "c"] {
        assert_eq!(rebuilt.counter(name), later.counter(name), "{name}");
    }
    assert_eq!(rebuilt.hists.get("lat"), later.hists.get("lat"));
    // histogram bucketing is log2
    assert_eq!(Hist::bucket_of(0), 0);
    assert_eq!(Hist::bucket_of(1), 1);
    assert_eq!(Hist::bucket_of(900), 10);
    assert_eq!(Hist::bucket_of(u64::MAX), 63);
}

/// The Chrome trace export of a real captured run parses, has
/// monotone timestamps, balanced B/E spans, and carries the registry.
#[test]
fn chrome_json_round_trips_through_the_validator() {
    let _g = obs_lock();
    let _full = trace::level_guard(TraceLevel::Full);
    let net = Network::ring(12).unwrap();
    let input = set_instance(4);
    let trace = captured_flood(&net, &input, 4);
    let doc = trace.to_chrome_json();
    let n = RunTrace::validate_chrome_json(&doc).expect("valid Chrome trace JSON");
    // every event plus one trailing C record per registry counter
    assert_eq!(n, trace.events.len() + trace.counters.counters.len());
    // the validator rejects corrupted documents
    assert!(RunTrace::validate_chrome_json("{}").is_err());
    assert!(RunTrace::validate_chrome_json(
        "{\"traceEvents\":[{\"ph\":\"E\",\"name\":\"x\",\"ts\":0}]}"
    )
    .is_err());
}

/// The acceptance assertion: on the grid-256 flood, the registry
/// delta captured around the run reconciles exactly with the
/// `ShardRunOutcome` counters, and the span tree covers
/// rounds → phases → per-node steps → deliveries.
#[test]
fn registry_reconciles_with_shard_outcome_on_grid_256() {
    let _g = obs_lock();
    let _full = trace::level_guard(TraceLevel::Full);
    let net = Network::grid(16, 16).unwrap();
    let input = set_instance(8);
    let t = flood_transducer(input.schema(), FloodMode::Dedup, None).unwrap();
    let p = HorizontalPartition::round_robin(&net, &input);
    let budget = RunBudget::steps(5_000_000);
    let (out, trace) = trace::capture_run(|| {
        run_sharded(&net, &t, &p, &ShardOptions::sharded(4), &budget).unwrap()
    });
    assert!(out.outcome.quiescent);
    assert_eq!(trace.dropped, 0, "grid-256 flood overflowed the buffer");
    let counters = &trace.counters;
    assert_eq!(counters.counter("net.runs"), 1);
    assert_eq!(counters.counter("net.rounds"), out.rounds as u64);
    assert_eq!(counters.counter("net.steps"), out.outcome.steps as u64);
    assert_eq!(
        counters.counter("net.heartbeats"),
        out.outcome.heartbeats as u64
    );
    assert_eq!(
        counters.counter("net.deliveries"),
        out.outcome.deliveries as u64
    );
    assert_eq!(
        counters.counter("net.messages_enqueued"),
        out.outcome.messages_enqueued as u64
    );
    assert_eq!(counters.counter("net.quiescent_runs"), 1);
    let max_active = counters
        .hist("net.max_active")
        .expect("max_active histogram");
    assert_eq!(max_active.count, 1);
    assert_eq!(max_active.sum, out.max_active as u64);
    assert!(
        counters.hist("net.run_ns").is_some(),
        "run_ns histogram missing"
    );
    // span tree: rounds wrap phases wrap per-node steps; deliveries
    // appear both as phase spans and step spans.
    let lines = trace.canonical_lines();
    let count = |needle: &str| lines.iter().filter(|l| l.starts_with(needle)).count();
    assert_eq!(count("B net:round"), out.rounds);
    assert_eq!(count("B net:step.heartbeat"), out.outcome.heartbeats);
    assert_eq!(count("B net:step.deliver"), out.outcome.deliveries);
    assert!(count("B net:phase.deliver") > 0);
    assert!(count("B net:phase.heartbeat") > 0);
}

/// The serial scheduler driver (`rtx_net::run`) publishes the same
/// `net.*` schema, so one reconciliation story holds for every
/// executor.
#[test]
fn serial_driver_publishes_the_same_schema() {
    use rtx::net::{run, FifoRoundRobin};
    let _g = obs_lock();
    let _ctr = trace::level_guard(TraceLevel::Counters);
    let net = Network::line(3).unwrap();
    let input = set_instance(3);
    let t = flood_transducer(input.schema(), FloodMode::Dedup, None).unwrap();
    let p = HorizontalPartition::round_robin(&net, &input);
    let (out, trace) = trace::capture_run(|| {
        run(
            &net,
            &t,
            &p,
            &mut FifoRoundRobin::new(),
            &RunBudget::steps(100_000),
        )
        .unwrap()
    });
    assert!(out.quiescent);
    assert_eq!(trace.counters.counter("net.runs"), 1);
    assert_eq!(trace.counters.counter("net.steps"), out.steps as u64);
    assert_eq!(
        trace.counters.counter("net.heartbeats"),
        out.heartbeats as u64
    );
    assert_eq!(
        trace.counters.counter("net.deliveries"),
        out.deliveries as u64
    );
    assert_eq!(trace.counters.counter("net.quiescent_runs"), 1);
}

/// Fixpoint / storage instrumentation: a traced Datalog evaluation
/// publishes `query.*` counters and emits per-stratum spans.
#[test]
fn query_eval_publishes_strata() {
    use rtx::query::{Atom, Literal, Program, Rule, Term};
    let _g = obs_lock();
    let _full = trace::level_guard(TraceLevel::Full);
    let head = |xs: &[&str]| Atom::new("t", xs.iter().map(|v| Term::var(*v)).collect::<Vec<_>>());
    let body = |p: &str, xs: &[&str]| {
        Literal::Pos(Atom::new(
            p,
            xs.iter().map(|v| Term::var(*v)).collect::<Vec<_>>(),
        ))
    };
    let program = Program::new(vec![
        Rule::new(head(&["X", "Y"]), vec![body("e", &["X", "Y"])]).unwrap(),
        Rule::new(
            head(&["X", "Z"]),
            vec![body("t", &["X", "Y"]), body("e", &["Y", "Z"])],
        )
        .unwrap(),
    ])
    .unwrap();
    let db = Instance::from_facts(
        Schema::new().with("e", 2),
        vec![fact!("e", 1, 2), fact!("e", 2, 3), fact!("e", 3, 4)],
    )
    .unwrap();
    let (out, trace) = trace::capture_run(|| program.eval(&db).unwrap());
    assert_eq!(out.relation(&"t".into()).map(|r| r.len()).unwrap(), 6);
    assert_eq!(trace.counters.counter("query.evals"), 1);
    assert!(trace.counters.counter("query.derived") >= 6);
    let lines = trace.canonical_lines();
    assert!(lines.iter().any(|l| l.starts_with("B query:eval")));
    assert!(lines.iter().any(|l| l.starts_with("B query:stratum")));
    assert!(lines.iter().any(|l| l.starts_with("I query:stratum.tally")));
}

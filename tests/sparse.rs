//! Property tests for the event-driven sparse executor
//! (`rtx_net::run_sparse`): output and quiescence-verdict agreement
//! with the fair serial reference on random topologies, budgets, and
//! fault plans; bit-identical replay across thread counts; and the
//! scheduler-fairness satellite — every built-in scheduler quiesces
//! the flooder on random connected topologies.

use proptest::prelude::*;
use rtx::calm::constructions::flood::{flood_transducer, FloodMode};
use rtx::chaos::{Crash, CrashKind, FaultPlan, FaultSession, LinkFaults, Partition};
use rtx::net::{
    run, FifoRoundRobin, HorizontalPartition, LifoRoundRobin, Network, NodeId, RandomScheduler,
    RunBudget, Scheduler, ShardOptions, ShardPlan,
};
use rtx::query::QueryRef;
use rtx::relational::{fact, Fact, Instance, Schema};
use std::collections::BTreeSet;
use std::sync::Arc;

fn set_instance(values: &[i64]) -> Instance {
    let sch = Schema::new().with("S", 1);
    let facts: Vec<Fact> = values.iter().map(|&v| fact!("S", v)).collect();
    Instance::from_facts(sch, facts).unwrap()
}

/// Identity output over the flooded relation, so output comparisons
/// between executors are about real quiescent outputs, not empty sets.
fn identity_out() -> QueryRef {
    let prog = rtx::query::parser::parse_program("T(X) :- S(X).").unwrap();
    Arc::new(rtx::query::DatalogQuery::new(prog, "T").unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole invariant: on random connected topologies and
    /// random partitions, the sparse executor reaches the same
    /// quiescent output (global and per node) as the paper-faithful
    /// fair serial reference — and sparse execution is bit-identical
    /// across every thread count and shard plan.
    #[test]
    fn sparse_equals_fair_serial_reference(
        values in proptest::collection::btree_set(0i64..40, 1..5),
        nodes in 2usize..9,
        topo_seed in 0u64..500,
        part_seed in 0u64..500) {
        use rand::SeedableRng;
        let input = set_instance(&values.iter().copied().collect::<Vec<_>>());
        let net = Network::random_connected_seeded(nodes, 0.2, topo_seed).unwrap();
        let t = flood_transducer(input.schema(), FloodMode::Dedup, Some(identity_out())).unwrap();
        let mut prng = rand::rngs::StdRng::seed_from_u64(part_seed);
        let p = HorizontalPartition::random(&net, &input, 0.1, &mut prng);
        let budget = RunBudget::steps(500_000);
        let reference = run(&net, &t, &p, &mut FifoRoundRobin::new(), &budget).unwrap();
        prop_assert!(reference.quiescent);
        let sparse = rtx::net::run_sparse(
            &net, &t, &p, &ShardOptions::serial().with_log(), &budget).unwrap();
        prop_assert!(sparse.outcome.quiescent, "sparse run failed to certify quiescence");
        prop_assert_eq!(&sparse.outcome.output, &reference.output);
        prop_assert_eq!(&sparse.outcome.outputs_per_node, &reference.outputs_per_node);
        for threads in [2usize, 3, 4, 8] {
            for plan in [ShardPlan::Contiguous, ShardPlan::RoundRobin, ShardPlan::Hash] {
                let opts = ShardOptions::sharded(threads).with_plan(plan).with_log();
                let sharded = rtx::net::run_sparse(&net, &t, &p, &opts, &budget).unwrap();
                prop_assert_eq!(&sharded.log, &sparse.log,
                                "sparse log diverged: threads={} plan={:?}", threads, plan);
                prop_assert_eq!(sharded.outcome.steps, sparse.outcome.steps);
                prop_assert_eq!(sharded.rounds, sparse.rounds);
                prop_assert_eq!(sharded.max_active, sparse.max_active);
                prop_assert!(sharded.outcome.final_config == sparse.outcome.final_config,
                             "sparse final configuration diverged: threads={} plan={:?}",
                             threads, plan);
            }
        }
    }

    /// Budget truncation: a sparse run cut at an arbitrary step cap is
    /// still deterministic across thread counts, and never overshoots.
    #[test]
    fn sparse_budget_truncation_deterministic(
        values in proptest::collection::btree_set(0i64..40, 1..4),
        nodes in 2usize..8,
        topo_seed in 0u64..300,
        cap in 1usize..40) {
        let input = set_instance(&values.iter().copied().collect::<Vec<_>>());
        let net = Network::random_connected_seeded(nodes, 0.2, topo_seed).unwrap();
        let t = flood_transducer(input.schema(), FloodMode::Dedup, Some(identity_out())).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input);
        let budget = RunBudget::steps(cap);
        let serial = rtx::net::run_sparse(
            &net, &t, &p, &ShardOptions::serial().with_log(), &budget).unwrap();
        prop_assert!(serial.outcome.steps <= cap);
        let sharded = rtx::net::run_sparse(
            &net, &t, &p, &ShardOptions::sharded(3).with_log(), &budget).unwrap();
        prop_assert_eq!(&sharded.log, &serial.log);
        prop_assert!(sharded.outcome.final_config == serial.outcome.final_config);
    }

    /// Fault plans: under random fair plans (delays, a healing
    /// partition, a crash/restart), the sparse executor agrees with the
    /// dense faulted executor on output, per-node outputs, and the
    /// quiescence verdict — the fault hooks re-arm crashed, restarted,
    /// and partition-healed nodes correctly.
    #[test]
    fn sparse_faulted_agrees_with_dense_faulted(
        values in proptest::collection::btree_set(0i64..40, 1..4),
        nodes in 3usize..8,
        topo_seed in 0u64..300,
        fault_seed in 0u64..1000) {
        let input = set_instance(&values.iter().copied().collect::<Vec<_>>());
        let net = Network::random_connected_seeded(nodes, 0.2, topo_seed).unwrap();
        let t = flood_transducer(input.schema(), FloodMode::Dedup, Some(identity_out())).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input);
        let budget = RunBudget::steps(500_000);
        // Derive the plan's shape from one seed (the compat proptest
        // macro caps each test at six generated parameters).
        let delay = (fault_seed % 3) as u32;
        let crash_node = (fault_seed / 3) as usize % nodes;
        let crash_at = 1 + fault_seed / 7 % 4;
        let down_for = 1 + fault_seed / 11 % 3;
        let side: BTreeSet<usize> = (0..nodes).filter(|i| i % 2 == 0).collect();
        let plan = FaultPlan {
            default_link: LinkFaults::delayed(delay),
            partitions: vec![Partition { side, from: 1, heal: 4 }],
            crashes: vec![Crash {
                node: crash_node,
                at: crash_at,
                restart: Some(crash_at + down_for),
                kind: CrashKind::PersistentEdb,
            }],
            ..FaultPlan::default()
        };
        let session = FaultSession::new(plan, fault_seed);
        let dense = rtx::net::run_sharded_faulted(
            &net, &t, &p, &ShardOptions::serial(), &budget, &mut session.clone()).unwrap();
        let sparse = rtx::net::run_sparse_faulted(
            &net, &t, &p, &ShardOptions::serial(), &budget, &mut session.clone()).unwrap();
        prop_assert_eq!(sparse.outcome.quiescent, dense.outcome.quiescent,
                        "quiescence verdicts diverged");
        prop_assert_eq!(&sparse.outcome.output, &dense.outcome.output);
        prop_assert_eq!(&sparse.outcome.outputs_per_node, &dense.outcome.outputs_per_node);
        // And the faulted sparse run replays identically when sharded.
        let sharded = rtx::net::run_sparse_faulted(
            &net, &t, &p, &ShardOptions::sharded(4), &budget, &mut session.clone()).unwrap();
        prop_assert!(sharded.outcome.final_config == sparse.outcome.final_config);
    }

    /// Scheduler-fairness satellite: every built-in scheduler — FIFO
    /// round-robin, LIFO round-robin, and the random scheduler at its
    /// default and near-degenerate heartbeat probabilities — quiesces
    /// the dedup flooder on random connected topologies within budget,
    /// reaching the same output (the flooder is confluent).
    #[test]
    fn every_scheduler_quiesces_the_flooder(
        values in proptest::collection::btree_set(0i64..40, 1..4),
        nodes in 2usize..8,
        topo_seed in 0u64..300,
        sched_seed in 0u64..1000) {
        let input = set_instance(&values.iter().copied().collect::<Vec<_>>());
        let net = Network::random_connected_seeded(nodes, 0.2, topo_seed).unwrap();
        let t = flood_transducer(input.schema(), FloodMode::Dedup, Some(identity_out())).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input);
        let budget = RunBudget::steps(1_000_000);
        let reference = run(&net, &t, &p, &mut FifoRoundRobin::new(), &budget).unwrap();
        prop_assert!(reference.quiescent);
        let mut schedulers: Vec<(&str, Box<dyn Scheduler>)> = vec![
            ("lifo", Box::new(LifoRoundRobin::new())),
            ("random", Box::new(RandomScheduler::seeded(sched_seed))),
            ("random-p0.999",
             Box::new(RandomScheduler::seeded(sched_seed).with_heartbeat_prob(0.999))),
            ("random-p1.0-clamped",
             Box::new(RandomScheduler::seeded(sched_seed).with_heartbeat_prob(1.0))),
        ];
        for (name, sched) in schedulers.iter_mut() {
            let out = run(&net, &t, &p, sched.as_mut(), &budget).unwrap();
            prop_assert!(out.quiescent, "{} failed to quiesce the flooder", name);
            prop_assert_eq!(&out.output, &reference.output,
                            "{} diverged from the FIFO reference", name);
        }
    }
}

/// The point of the whole exercise, at test scale: the sparse executor
/// quiesces a long mostly-idle line in S steps, while the dense
/// executor cannot quiesce the same workload even with a 10× step
/// budget — its every-node-every-round sweeps burn the budget on no-op
/// heartbeats.
#[test]
fn sparse_step_advantage_on_long_line() {
    let net = Network::line(400).unwrap();
    let input = set_instance(&[7]);
    let t = flood_transducer(input.schema(), FloodMode::Dedup, Some(identity_out())).unwrap();
    let p = HorizontalPartition::concentrate(&net, &input, &NodeId::sym("n0")).unwrap();
    let sparse = rtx::net::run_sparse(
        &net,
        &t,
        &p,
        &ShardOptions::serial(),
        &RunBudget::steps(10_000_000),
    )
    .unwrap();
    assert!(sparse.outcome.quiescent);
    let s = sparse.outcome.steps;
    let dense = rtx::net::run_sharded(
        &net,
        &t,
        &p,
        &ShardOptions::serial(),
        &RunBudget::steps(10 * s),
    )
    .unwrap();
    assert!(
        !dense.outcome.quiescent,
        "dense executor quiesced within 10x the sparse budget ({} steps)",
        10 * s
    );
    assert_eq!(
        sparse.outcome.output.len(),
        1,
        "the flooded fact reached everyone"
    );
    assert!(
        sparse.max_active < 40,
        "frontier stayed under 10% of the line"
    );
}

//! Workspace-level chaos smoke: the facade re-exports, the
//! `RTX_CHAOS_*` environment wiring, and fault injection composed with
//! the auto-sharded executor (which honors `RTX_NET_THREADS` — CI runs
//! this suite under pinned thread counts and a pinned
//! `RTX_CHAOS_SEED`).

use rtx::calm::examples;
use rtx::chaos::{
    explore, run_round_faulted, Crash, CrashKind, ExplorerOptions, FaultPlan, FaultSession,
    LinkFaults,
};
use rtx::net::{HorizontalPartition, Network, RunBudget, ShardOptions};
use rtx::relational::{fact, Instance, Schema};

fn input_s2(pairs: &[(i64, i64)]) -> Instance {
    Instance::from_facts(
        Schema::new().with("S", 2),
        pairs
            .iter()
            .map(|&(a, b)| fact!("S", a, b))
            .collect::<Vec<_>>(),
    )
    .unwrap()
}

/// A plan exercising every fault family at once.
fn kitchen_sink_plan() -> FaultPlan {
    let mut plan = FaultPlan::none();
    plan.default_link = LinkFaults {
        delay: (0, 3),
        dup_millis: 300,
        drop_millis: 0,
    };
    plan.partitions.push(rtx::chaos::Partition {
        side: [0, 1].into_iter().collect(),
        from: 2,
        heal: 6,
    });
    plan.crashes.push(Crash {
        node: 2,
        at: 3,
        restart: Some(7),
        kind: CrashKind::PersistentEdb,
    });
    plan
}

#[test]
fn faulted_auto_sharded_run_matches_serial_bit_for_bit() {
    let net = Network::grid(3, 2).unwrap();
    let t = examples::ex3_transitive_closure(true).unwrap();
    let p = HorizontalPartition::round_robin(&net, &input_s2(&[(1, 2), (2, 3), (3, 4)]));
    let budget = RunBudget::steps(100_000);
    let seed = rtx_core::env::parse_u64("RTX_CHAOS_SEED").unwrap_or(0x000C_7A05);
    let session = FaultSession::new(kitchen_sink_plan(), seed);
    let serial = run_round_faulted(
        &net,
        &t,
        &p,
        &ShardOptions::serial().with_log(),
        &budget,
        &session,
    )
    .unwrap();
    // auto mode resolves RTX_NET_THREADS (the CI pin) or available
    // parallelism — fault injection must be bit-identical regardless.
    let auto = run_round_faulted(
        &net,
        &t,
        &p,
        &ShardOptions {
            record_log: true,
            ..ShardOptions::default()
        },
        &budget,
        &session,
    )
    .unwrap();
    assert_eq!(auto.log, serial.log);
    assert_eq!(auto.outcome.final_config, serial.outcome.final_config);
    assert_eq!(auto.outcome.output, serial.outcome.output);
    assert!(serial.outcome.quiescent);
}

#[test]
fn explorer_options_honor_the_chaos_env() {
    let opts = ExplorerOptions::auto();
    if let Some(seed) = rtx_core::env::parse_u64("RTX_CHAOS_SEED") {
        assert_eq!(opts.seed, seed, "RTX_CHAOS_SEED must drive the explorer");
    }
    if let Some(runs) = rtx_core::env::parse_positive_usize("RTX_CHAOS_RUNS") {
        assert_eq!(opts.runs, runs, "RTX_CHAOS_RUNS must drive the explorer");
    }
}

#[test]
fn facade_explore_certifies_the_dedup_flooder() {
    let net = Network::ring(4).unwrap();
    let t = examples::ex3_transitive_closure(true).unwrap();
    let p = HorizontalPartition::round_robin(&net, &input_s2(&[(1, 2), (2, 3)]));
    let opts = ExplorerOptions::auto()
        .with_runs(24)
        .with_budget(RunBudget::steps(20_000));
    let report = explore(&net, &t, &p, &opts).unwrap();
    assert!(report.consistent(), "{:?}", report.divergence);
    assert!(report.reference_quiescent);
    assert_eq!(report.runs_executed, 24);
}

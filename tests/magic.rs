//! Property tests for goal-directed evaluation: the magic-sets
//! rewrite must be **answer-equivalent** to full materialization on
//! random stratified programs (recursion, negation, nonequalities) ×
//! random bound/free query patterns, across all three storage
//! engines — plus directed tests pinning the adornment of repeated
//! predicates, the strictly-smaller derivation counts that justify
//! the rewrite, seed rebinding through the maintained fixpoint, and
//! the fallback paths (all-free patterns, EDB patterns, rewrites that
//! would be unstratifiable).

use proptest::prelude::*;
use rtx::query::parser::parse_program;
use rtx::query::{atom, Atom, QueryMode, Term};
use rtx::relational::{fact, Instance, Schema, StorageMode};

const ALL_MODES: [StorageMode; 3] = [
    StorageMode::Adaptive,
    StorageMode::Columnar,
    StorageMode::Btree,
];

/// The same always-stratified pool as `tests/storage.rs`: stratum 1 is
/// positive (optionally recursive) over the EDB `e`, stratum 2 negates
/// stratum-1 predicates. Index 0 is mandatory so `p` is always defined.
const RULE_POOL: [&str; 8] = [
    "p(X,Y) :- e(X,Y).",
    "p(X,Z) :- p(X,Y), e(Y,Z).",
    "q(X) :- e(X,Y).",
    "q(Y) :- e(X,Y).",
    "r(X,Y) :- e(X,Y), !p(Y,X).",
    "s(X) :- q(X), !p(X,X).",
    "s(Y) :- e(X,Y), X != Y.",
    "w(X,Y) :- e(X,Y), q(Y), !s(X).",
];

/// Query targets drawn from the pool's predicates (plus the EDB —
/// an exercised fallback path).
const TARGETS: [(&str, usize); 6] = [("p", 2), ("q", 1), ("r", 2), ("s", 1), ("w", 2), ("e", 2)];

fn random_program(picks: &[bool]) -> String {
    let mut src = String::from(RULE_POOL[0]);
    for (i, rule) in RULE_POOL.iter().enumerate().skip(1) {
        if *picks.get(i - 1).unwrap_or(&false) {
            src.push(' ');
            src.push_str(rule);
        }
    }
    src
}

fn edge_instance_in(mode: StorageMode, pairs: &[(u8, u8)]) -> Instance {
    let mut i = Instance::empty_in(mode, Schema::new().with("e", 2));
    for &(a, b) in pairs {
        i.insert_fact(fact!("e", a as i64, b as i64)).unwrap();
    }
    i
}

/// Build a pattern for `pred` with the given per-position bound mask
/// and constants; free positions get distinct variables.
fn pattern_of(pred: &str, mask: &[bool], consts: &[i64]) -> Atom {
    let names = ["A", "B", "C"];
    let terms: Vec<Term> = mask
        .iter()
        .enumerate()
        .map(|(i, b)| {
            if *b {
                Term::cons(consts[i])
            } else {
                Term::var(names[i])
            }
        })
        .collect();
    Atom::new(pred, terms)
}

fn chain_db(n: i64) -> Instance {
    let mut db = Instance::empty(Schema::new().with("e", 2));
    for i in 0..n {
        db.insert_fact(fact!("e", i, i + 1)).unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Magic ≡ materialize on random programs × random patterns ×
    /// every storage engine: same answers whether the query's bound
    /// constants drive a rewrite or a full fixpoint plus filter.
    #[test]
    fn magic_matches_materialization(
        pairs in proptest::collection::vec((0u8..6, 0u8..6), 0..14),
        picks in proptest::collection::vec(any::<bool>(), RULE_POOL.len() - 1),
        target in 0usize..TARGETS.len(),
        mask in proptest::collection::vec(any::<bool>(), 2),
        consts in proptest::collection::vec(0i64..6, 2),
    ) {
        let program = parse_program(&random_program(&picks)).unwrap();
        let (pred, arity) = TARGETS[target];
        if program.signature().arity(&pred.into()) != Some(arity) {
            // This random program never mentions the target (e.g. `w`
            // without its rule picked): nothing to query.
            return Ok(());
        }
        let pattern = pattern_of(pred, &mask[..arity], &consts);
        let magic = program.for_query_mode(&pattern, QueryMode::Magic).unwrap();
        let full = program.for_query_mode(&pattern, QueryMode::Materialize).unwrap();
        prop_assert!(!full.is_magic());
        for mode in ALL_MODES {
            let db = edge_instance_in(mode, &pairs);
            prop_assert_eq!(
                magic.answer(&db).unwrap(),
                full.answer(&db).unwrap(),
                "pattern {} over {:?} under {:?}", &pattern, &picks, mode
            );
        }
    }

    /// Rebinding a maintained magic query to new constants via the ±
    /// seed delta gives the same answers as building the new query
    /// from scratch.
    #[test]
    fn maintained_rebind_matches_scratch(
        pairs in proptest::collection::vec((0u8..6, 0u8..6), 1..14),
        first in 0i64..6,
        second in 0i64..6,
    ) {
        let program = parse_program("p(X,Y) :- e(X,Y). p(X,Z) :- p(X,Y), e(Y,Z).").unwrap();
        for mode in ALL_MODES {
            let db = edge_instance_in(mode, &pairs);
            let q1 = program
                .for_query_mode(&pattern_of("p", &[true, false], &[first, 0]), QueryMode::Magic)
                .unwrap();
            prop_assert!(q1.is_magic());
            let mut fix = q1.maintained(&db).unwrap();
            prop_assert_eq!(
                q1.answer_from(fix.current()).unwrap(),
                q1.answer(&db).unwrap()
            );
            let (q2, delta) = q1
                .rebind(&pattern_of("p", &[true, false], &[second, 0]))
                .unwrap();
            fix.apply(&delta).unwrap();
            prop_assert_eq!(
                q2.answer_from(fix.current()).unwrap(),
                q2.answer(&db).unwrap(),
                "rebind {} -> {} over {:?} under {:?}", first, second, &pairs, mode
            );
        }
    }
}

/// One predicate demanded under several adornments in the same
/// rewrite: `p` is queried bound-free but also feeds `two` through a
/// bound-bound occurrence — both adorned versions coexist and the
/// answers stay exact.
#[test]
fn repeated_predicate_under_multiple_adornments() {
    let program = parse_program(
        "p(X,Y) :- e(X,Y).
         p(X,Z) :- p(X,Y), e(Y,Z).
         two(X,Z) :- p(X,Y), p(Y,Z).",
    )
    .unwrap();
    let pattern = atom!("two"; 0, @"Z");
    let magic = program.for_query_mode(&pattern, QueryMode::Magic).unwrap();
    assert!(magic.is_magic());
    let full = program
        .for_query_mode(&pattern, QueryMode::Materialize)
        .unwrap();
    for mode in ALL_MODES {
        let db = edge_instance_in(mode, &[(0, 1), (1, 2), (2, 3), (4, 5)]);
        let m = magic.answer(&db).unwrap();
        assert_eq!(m, full.answer(&db).unwrap());
        assert_eq!(m.len(), 2); // two(0,2), two(0,3)
    }
    // Both adornments of `p` appear in the rewritten program.
    let names: Vec<String> = magic
        .program()
        .idb_predicates()
        .iter()
        .map(|r| r.to_string())
        .collect();
    assert!(names.iter().any(|n| n == "p__bf"), "got {names:?}");
    assert!(names.iter().any(|n| n == "two__bf"), "got {names:?}");
}

/// Repeated variables in the pattern (`p(A, A)`) are answered through
/// the rewrite of the per-position shape plus an exact filter.
#[test]
fn repeated_pattern_variable_is_filtered_exactly() {
    let program = parse_program("p(X,Y) :- e(X,Y). p(X,Z) :- p(X,Y), e(Y,Z).").unwrap();
    let pattern = atom!("p"; @"A", @"A");
    let magic = program.for_query_mode(&pattern, QueryMode::Magic).unwrap();
    let full = program
        .for_query_mode(&pattern, QueryMode::Materialize)
        .unwrap();
    for mode in ALL_MODES {
        let db = edge_instance_in(mode, &[(1, 2), (2, 1), (2, 3)]);
        let m = magic.answer(&db).unwrap();
        assert_eq!(m, full.answer(&db).unwrap());
        assert_eq!(m.len(), 2); // p(1,1) and p(2,2) through the cycle
    }
}

/// The derivation counters prove the point of the rewrite: a bound
/// transitive-closure lookup on a chain derives O(n) facts under
/// magic against O(n²) under materialization.
#[test]
fn magic_derives_strictly_fewer_facts_on_bound_tc() {
    let program = parse_program("p(X,Y) :- e(X,Y). p(X,Z) :- p(X,Y), e(Y,Z).").unwrap();
    let db = chain_db(64);
    let pattern = atom!("p"; 0, @"Y");
    let magic = program.for_query_mode(&pattern, QueryMode::Magic).unwrap();
    let full = program
        .for_query_mode(&pattern, QueryMode::Materialize)
        .unwrap();
    let (ma, ms) = magic.answer_with_stats(&db).unwrap();
    let (fa, fs) = full.answer_with_stats(&db).unwrap();
    assert_eq!(ma, fa);
    assert_eq!(ma.len(), 64);
    assert!(
        ms.eval_derived() < fs.eval_derived(),
        "magic must derive strictly fewer: {} vs {}",
        ms.eval_derived(),
        fs.eval_derived()
    );
    // …and not marginally fewer: the demand-reachable set is linear.
    assert!(ms.eval_derived() * 8 < fs.eval_derived());
    assert!(ms.eval_considered() < fs.eval_considered());
}

/// Fallback paths: all-free patterns, EDB targets, and rewrites that
/// would push demand for a negated predicate through its own negation
/// all answer via materialization — never wrongly, never magically.
#[test]
fn fallback_paths_answer_by_materialization() {
    let program = parse_program("p(X,Y) :- e(X,Y). p(X,Z) :- p(X,Y), e(Y,Z).").unwrap();
    let free = program.for_query(&atom!("p"; @"X", @"Y")).unwrap();
    assert!(!free.is_magic());
    let edb = program
        .for_query_mode(&atom!("e"; 1, @"Y"), QueryMode::Magic)
        .unwrap();
    assert!(!edb.is_magic());

    // Stratified as written, but the rewrite would make demand for
    // `q` flow through `p`, which negates `q`: rejected → fallback.
    let tricky = parse_program(
        "p(X) :- e(X,Y), p(Y), !q(Y).
         p(X) :- s(X).
         q(X) :- g(X).",
    )
    .unwrap();
    assert!(tricky.stratify().is_ok());
    let q = tricky
        .for_query_mode(&atom!("p"; 1), QueryMode::Magic)
        .unwrap();
    assert!(!q.is_magic());
    for mode in ALL_MODES {
        let schema = Schema::new()
            .with("e", 2)
            .with("s", 1)
            .with("g", 1)
            .with("p", 1)
            .with("q", 1);
        let mut db = Instance::empty_in(mode, schema);
        for f in [fact!("e", 1, 2), fact!("s", 2), fact!("g", 3)] {
            db.insert_fact(f).unwrap();
        }
        // p(2) from s(2); p(1) from e(1,2) ∧ p(2) ∧ ¬q(2); the
        // pattern p(1) then filters to just (1).
        let ans = q.answer(&db).unwrap();
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&rtx::relational::tuple![1]));
    }
}

/// The `RTX_QUERY_MAGIC` knob steers `Program::for_query`: under the
/// CI pass that exports `RTX_QUERY_MAGIC=off`, bound patterns fall
/// back to materialization; by default they go magic. (The knob is
/// read once per process, so this asserts against the ambient value.)
#[test]
fn query_mode_knob_is_respected() {
    let program = parse_program("p(X,Y) :- e(X,Y). p(X,Z) :- p(X,Y), e(Y,Z).").unwrap();
    let q = program.for_query(&atom!("p"; 0, @"Y")).unwrap();
    let expect_magic = match std::env::var("RTX_QUERY_MAGIC") {
        Ok(v) => QueryMode::parse(&v).unwrap_or(QueryMode::Magic) == QueryMode::Magic,
        Err(_) => true,
    };
    assert_eq!(q.is_magic(), expect_magic);
    let db = chain_db(8);
    // Whatever the knob says, the answers are the same.
    let full = program
        .for_query_mode(&atom!("p"; 0, @"Y"), QueryMode::Materialize)
        .unwrap();
    assert_eq!(q.answer(&db).unwrap(), full.answer(&db).unwrap());
}
